//! Allocator-wiring validation.
//!
//! Static structural checks (stage dimensions, wavefront matrix shape) plus
//! randomized behavioural cross-checks that the allocator implementations in
//! `noc-core` honour the structural guarantees the router relies on: VC
//! grants legal under the sparse class mask, switch grants conflict-free,
//! and the two speculation masking schemes of §5.2 consistent between
//! `spec.rs` and `switch.rs`.

use noc_arbiter::ArbiterKind;
use noc_core::{
    validate_switch_grants, validate_vc_grants, AllocatorKind, BitMatrix, DenseVcAllocator,
    SparseVcAllocator, SpecMode, SpeculativeSwitchAllocator, SwitchAllocatorKind, SwitchRequests,
    VcAllocSpec, VcAllocator, VcRequest,
};
use rand::{Rng, SeedableRng};

/// Outcome of the wiring checks for one spec.
#[derive(Debug, Default)]
pub struct WiringReport {
    /// Violations of structural guarantees.
    pub errors: Vec<String>,
    /// Checks performed (for the rendered report).
    pub info: Vec<String>,
}

const ROUNDS: usize = 60;

/// Runs every wiring check against `spec`.
pub fn validate_wiring(spec: &VcAllocSpec) -> WiringReport {
    let mut rep = WiringReport::default();
    dimension_checks(spec, &mut rep);
    vc_allocation_checks(spec, &mut rep);
    switch_allocation_checks(spec, &mut rep);
    speculation_mask_checks(spec, &mut rep);
    rep
}

/// Separable stage dimensions and wavefront matrix shape (§2, Figure 8).
fn dimension_checks(spec: &VcAllocSpec, rep: &mut WiringReport) {
    let p = spec.ports();
    let v = spec.total_vcs();
    let sparse = SparseVcAllocator::new(spec.clone(), AllocatorKind::SepIfRr);
    let expect_sub = p * spec.resource_classes() * spec.vcs_per_class();
    if sparse.sub_width() != expect_sub {
        rep.errors.push(format!(
            "sparse sub-allocator width {} != P*R*C = {expect_sub}",
            sparse.sub_width()
        ));
    }
    // Canonical VC-allocator core: a P*V x P*V allocation problem.
    let n = p * v;
    for kind in AllocatorKind::COST_FIGURE_KINDS {
        let a = kind.build(n, n);
        if a.num_requesters() != n || a.num_resources() != n {
            rep.errors.push(format!(
                "{}: built {}x{} core for a {n}x{n} VC-allocation problem",
                kind.label(),
                a.num_requesters(),
                a.num_resources()
            ));
        }
    }
    for kind in switch_kinds() {
        let a = kind.build(p, v);
        if a.ports() != p || a.vcs() != v {
            rep.errors.push(format!(
                "{}: switch allocator reports {}x{} for a P={p}, V={v} router",
                kind.label(),
                a.ports(),
                a.vcs()
            ));
        }
    }
    rep.info.push(format!(
        "wiring: stage dimensions OK (VC core {n}x{n}, sparse sub-width {expect_sub}, \
         switch P={p} V={v})"
    ));
}

fn switch_kinds() -> Vec<SwitchAllocatorKind> {
    vec![
        SwitchAllocatorKind::SepIf(ArbiterKind::RoundRobin),
        SwitchAllocatorKind::SepIf(ArbiterKind::Matrix),
        SwitchAllocatorKind::SepOf(ArbiterKind::RoundRobin),
        SwitchAllocatorKind::SepOf(ArbiterKind::Matrix),
        SwitchAllocatorKind::Wavefront,
    ]
}

/// Random legal VC requests under `spec`'s class structure.
fn random_vc_round(spec: &VcAllocSpec, rng: &mut impl Rng) -> (Vec<Option<VcRequest>>, BitMatrix) {
    let p = spec.ports();
    let v = spec.total_vcs();
    let mut requests: Vec<Option<VcRequest>> = vec![None; p * v];
    for (g, slot) in requests.iter_mut().enumerate() {
        if !rng.gen_bool(0.4) {
            continue;
        }
        let (_, ir, _) = spec.vc_class(g % v);
        let succs = spec.rc_successors(ir);
        if succs.is_empty() {
            continue; // unreachable: try_new rejects dead-end classes
        }
        // A random non-empty subset of the legal successor classes.
        let mut classes: Vec<usize> = succs
            .iter()
            .copied()
            .filter(|_| rng.gen_bool(0.5))
            .collect();
        if classes.is_empty() {
            classes.push(succs[rng.gen_range(0..succs.len())]);
        }
        *slot = Some(VcRequest {
            out_port: rng.gen_range(0..p),
            classes,
        });
    }
    let mut free = BitMatrix::new(p, v);
    for port in 0..p {
        for vc in 0..v {
            free.set(port, vc, rng.gen_bool(0.6));
        }
    }
    (requests, free)
}

/// Dense and sparse VC allocators produce legal grants for every core
/// architecture.
fn vc_allocation_checks(spec: &VcAllocSpec, rep: &mut WiringReport) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x5eed_c4ec);
    let mut checked = 0usize;
    for kind in AllocatorKind::COST_FIGURE_KINDS {
        let mut dense = DenseVcAllocator::new(spec.clone(), kind);
        let mut sparse = SparseVcAllocator::new(spec.clone(), kind);
        for round in 0..ROUNDS {
            let (requests, free) = random_vc_round(spec, &mut rng);
            for (name, alloc) in [
                ("dense", &mut dense as &mut dyn VcAllocator),
                ("sparse", &mut sparse as &mut dyn VcAllocator),
            ] {
                let grants = alloc.allocate(&requests, &free);
                if let Err(e) = validate_vc_grants(spec, &requests, &free, &grants) {
                    rep.errors.push(format!(
                        "{name} VC allocator ({}) round {round}: {e}",
                        kind.label()
                    ));
                }
                checked += 1;
            }
        }
    }
    rep.info.push(format!(
        "wiring: {checked} randomized VC-allocation rounds validated \
         (dense + sparse, all core architectures)"
    ));
}

fn random_switch_round(p: usize, v: usize, rng: &mut impl Rng) -> SwitchRequests {
    let mut reqs = SwitchRequests::new(p, v);
    for i in 0..p {
        for vc in 0..v {
            if rng.gen_bool(0.35) {
                reqs.request(i, vc, rng.gen_range(0..p));
            }
        }
    }
    reqs
}

/// Switch allocators honour the one-grant-per-port constraints.
fn switch_allocation_checks(spec: &VcAllocSpec, rep: &mut WiringReport) {
    let (p, v) = (spec.ports(), spec.total_vcs());
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x5eed_5a11);
    let mut checked = 0usize;
    for kind in switch_kinds() {
        let mut alloc = kind.build(p, v);
        for round in 0..ROUNDS {
            let reqs = random_switch_round(p, v, &mut rng);
            let grants = alloc.allocate(&reqs);
            if let Err(e) = validate_switch_grants(&reqs, &grants) {
                rep.errors.push(format!(
                    "switch allocator {} round {round}: {e}",
                    kind.label()
                ));
            }
            checked += 1;
        }
    }
    rep.info.push(format!(
        "wiring: {checked} randomized switch-allocation rounds validated"
    ));
}

/// The §5.2 masking schemes never let a speculative grant displace
/// non-speculative traffic, and the pessimistic mask really is request-based.
fn speculation_mask_checks(spec: &VcAllocSpec, rep: &mut WiringReport) {
    let (p, v) = (spec.ports(), spec.total_vcs());
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x5eed_59ec);
    let kind = SwitchAllocatorKind::SepIf(ArbiterKind::RoundRobin);
    let mut checked = 0usize;
    for mode in [SpecMode::Conventional, SpecMode::Pessimistic] {
        let mut alloc = SpeculativeSwitchAllocator::new(kind, p, v, mode);
        for round in 0..ROUNDS {
            let ns = random_switch_round(p, v, &mut rng);
            let sp = random_switch_round(p, v, &mut rng);
            let r = alloc.allocate(&ns, &sp);
            let mut in_used = vec![false; p];
            let mut out_used = vec![false; p];
            for g in r.nonspec.iter().chain(&r.spec) {
                if std::mem::replace(&mut in_used[g.in_port], true) {
                    rep.errors.push(format!(
                        "{} round {round}: two combined grants at input {}",
                        mode.label(),
                        g.in_port
                    ));
                }
                if std::mem::replace(&mut out_used[g.out_port], true) {
                    rep.errors.push(format!(
                        "{} round {round}: two combined grants at output {}",
                        mode.label(),
                        g.out_port
                    ));
                }
            }
            if mode == SpecMode::Pessimistic {
                for g in &r.spec {
                    if ns.input_active(g.in_port) || ns.output_requested(g.out_port) {
                        rep.errors.push(format!(
                            "spec_req round {round}: surviving speculative grant \
                             {g:?} touches a non-speculatively requested port"
                        ));
                    }
                }
            }
            checked += 1;
        }
    }
    rep.info.push(format!(
        "wiring: {checked} speculation-mask rounds validated (spec_gnt + spec_req)"
    ));
}
