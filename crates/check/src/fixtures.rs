//! Named check fixtures: the paper's designs (positives) and two
//! deliberately deadlock-prone designs (negatives) used to test the checker
//! and as CI regression anchors.

use crate::model::RouteModel;
use noc_core::VcAllocSpec;
use noc_sim::{RoutingKind, Topology};

/// One complete design the checker can analyze: topology, routing relation
/// and VC class structure.
pub struct Fixture {
    /// Display name (used in reports and CLI output).
    pub label: String,
    /// Network topology.
    pub topo: Topology,
    /// Routing relation.
    pub model: RouteModel,
    /// VC class structure.
    pub spec: VcAllocSpec,
}

/// The paper's design for a topology label (`mesh` / `fbfly` / `torus`)
/// with `c` VC banks per class — expected deadlock-free.
pub fn paper_design(topo_label: &str, c: usize) -> Fixture {
    let (topo, spec) = match topo_label {
        "mesh" => (Topology::mesh(8, 8), VcAllocSpec::mesh(c)),
        "torus" => (Topology::torus(8, 8), VcAllocSpec::torus(c)),
        _ => (
            Topology::flattened_butterfly(4, 4, 4),
            VcAllocSpec::fbfly(c),
        ),
    };
    let kind = RoutingKind::for_topology(topo.label());
    Fixture {
        label: format!("{}_c{c}", topo.label()),
        topo,
        model: RouteModel::Simulator(kind),
        spec,
    }
}

/// Negative fixture: 8×8 torus routed shortest-direction with a single
/// resource class — no dateline discipline, so every ring's channels form a
/// dependency cycle. The checker must classify this as deadlocked.
pub fn torus_no_dateline(c: usize) -> Fixture {
    Fixture {
        label: format!("torus-no-dateline_c{c}"),
        topo: Topology::torus(8, 8),
        model: RouteModel::TorusNoDateline,
        spec: VcAllocSpec::new(5, 2, 1, c, vec![vec![true]]),
    }
}

/// Negative fixture: 8×8 torus whose resource class alternates every hop
/// under the mask `[[false, true], [true, false]]`. Every individual
/// transition is legal (the spec constructor accepts it), but on the
/// even-length rings the alternation closes a channel-dependency cycle —
/// only the global analysis catches it.
pub fn cyclic_vc_transitions(c: usize) -> Fixture {
    Fixture {
        label: format!("cyclic-vc-transitions_c{c}"),
        topo: Topology::torus(8, 8),
        model: RouteModel::AlternatingClass,
        spec: VcAllocSpec::new(5, 2, 2, c, vec![vec![false, true], vec![true, false]]),
    }
}

/// A named negative fixture by CLI keyword.
pub fn by_name(name: &str, c: usize) -> Option<Fixture> {
    match name {
        "no-dateline" => Some(torus_no_dateline(c)),
        "cyclic-vc" => Some(cyclic_vc_transitions(c)),
        _ => None,
    }
}
