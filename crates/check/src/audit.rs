//! Static soundness auditor for the workspace (`noc audit`).
//!
//! Four mechanical rules keep the unsafe surface of the parallel engine
//! from growing silently:
//!
//! 1. **Unsafe containment** — the token `unsafe` may appear only in the
//!    allowlisted files (the shard protocol in
//!    `crates/sim/src/network.rs`). Anywhere else it is an error, so a
//!    new `unsafe` block cannot land without widening the allowlist in
//!    this file, which is exactly the review trigger we want.
//! 2. **SAFETY comments** — every `unsafe` occurrence in an allowlisted
//!    file must have a `SAFETY:` comment on the same line or within the
//!    few lines above it, stating the invariant that justifies it.
//! 3. **Relaxed audit trail** — every `Ordering::Relaxed` in real code
//!    must carry a `RELAXED:` comment nearby explaining why the weakest
//!    ordering is sound at that site. (`crates/mc` is exempt: its
//!    `Ordering::Relaxed` is a variant of the checker's *modeled*
//!    ordering enum, not a `std::sync::atomic` site.)
//! 4. **Forbid-by-default** — every crate root except `noc-sim`'s must
//!    declare `#![forbid(unsafe_code)]`; `noc-sim`'s must declare
//!    `#![deny(unsafe_op_in_unsafe_fn)]`.
//!
//! Rules 1–3 scan *code*, not prose: a comment-and-string stripper runs
//! first so that doc comments discussing `unsafe` don't trip the audit.
//! Deliberately-failing inputs live in `crates/check/fixtures/audit/`
//! (excluded from the workspace walk) and are checked by
//! `noc audit --fixtures` and the crate tests.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Files allowed to contain `unsafe`, relative to the workspace root:
/// the parallel engine's shard protocol, and the counting
/// `GlobalAlloc` wrapper the zero-allocation test needs (the trait's
/// methods are inherently unsafe to implement).
pub const UNSAFE_ALLOWLIST: [&str; 2] = ["crates/sim/src/network.rs", "tests/zero_alloc.rs"];

/// Crate whose root keeps `unsafe` (under `deny(unsafe_op_in_unsafe_fn)`)
/// instead of forbidding it.
pub const UNSAFE_CRATE: &str = "crates/sim";

/// How many lines above an `unsafe` / `Relaxed` site an audit comment
/// may sit (same line always counts).
pub const COMMENT_WINDOW: usize = 6;

/// One rule violation at a source location.
#[derive(Debug, Clone)]
pub struct AuditFinding {
    /// Path relative to the audited root.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Short rule identifier (`unsafe-outside-allowlist`, …).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for AuditFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Outcome of an audit run.
#[derive(Debug, Default)]
pub struct AuditReport {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// All violations found, in walk order.
    pub findings: Vec<AuditFinding>,
    /// Per-rule counts of *clean* sites (audited unsafe blocks, annotated
    /// Relaxed sites, forbidding crate roots) for the summary line.
    pub audited_unsafe: usize,
    /// Annotated `Ordering::Relaxed` sites.
    pub audited_relaxed: usize,
    /// Crate roots carrying the required lint attribute.
    pub guarded_roots: usize,
}

impl AuditReport {
    /// True when no rule fired.
    pub fn passed(&self) -> bool {
        self.findings.is_empty()
    }

    /// Renders the report for terminal output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!("error: {f}\n"));
        }
        let verdict = if self.passed() { "PASS" } else { "FAIL" };
        out.push_str(&format!(
            "[{verdict}] audit: {} files scanned, {} audited unsafe sites, \
             {} annotated Relaxed sites, {} guarded crate roots, {} violations\n",
            self.files_scanned,
            self.audited_unsafe,
            self.audited_relaxed,
            self.guarded_roots,
            self.findings.len()
        ));
        out
    }
}

/// Strips comments and string/char literals from Rust source, preserving
/// line structure (every removed character becomes a space, newlines
/// survive), so token scans see only code and line numbers still match.
///
/// Handles line comments, nested block comments, string literals with
/// escapes, raw strings with up to arbitrary `#` depth, and char
/// literals — precisely enough for token-presence auditing, with no
/// claim of being a full lexer (lifetimes like `'a` are treated as
/// degenerate char literals, which is harmless here).
pub fn strip_comments_and_strings(src: &str) -> String {
    let b: Vec<char> = src.chars().collect();
    let mut out = String::with_capacity(src.len());
    let mut i = 0;
    let n = b.len();
    let blank = |c: char| if c == '\n' { '\n' } else { ' ' };
    while i < n {
        let c = b[i];
        // Line comment.
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            while i < n && b[i] != '\n' {
                out.push(' ');
                i += 1;
            }
            continue;
        }
        // Block comment (nested).
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let mut depth = 0usize;
            while i < n {
                if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    out.push(blank(b[i]));
                    i += 1;
                }
            }
            continue;
        }
        // Raw string r"..." / r#"..."# (with optional b prefix).
        let raw_start = if c == 'r' {
            Some(i + 1)
        } else if c == 'b' && i + 1 < n && b[i + 1] == 'r' {
            Some(i + 2)
        } else {
            None
        };
        if let Some(mut j) = raw_start {
            let mut hashes = 0usize;
            while j < n && b[j] == '#' {
                hashes += 1;
                j += 1;
            }
            if j < n && b[j] == '"' {
                // Emit the prefix as-is (it contains no audit tokens).
                for k in i..=j {
                    out.push(b[k]);
                }
                i = j + 1;
                'raw: while i < n {
                    if b[i] == '"' {
                        let mut m = 0usize;
                        while m < hashes && i + 1 + m < n && b[i + 1 + m] == '#' {
                            m += 1;
                        }
                        if m == hashes {
                            out.push('"');
                            for _ in 0..hashes {
                                out.push('#');
                            }
                            i += 1 + hashes;
                            break 'raw;
                        }
                    }
                    out.push(blank(b[i]));
                    i += 1;
                }
                continue;
            }
        }
        // String literal.
        if c == '"' {
            out.push('"');
            i += 1;
            while i < n {
                if b[i] == '\\' && i + 1 < n {
                    // Keep an escaped newline (string line-continuation)
                    // as a newline or every later line number shifts.
                    out.push(' ');
                    out.push(blank(b[i + 1]));
                    i += 2;
                    continue;
                }
                if b[i] == '"' {
                    out.push('"');
                    i += 1;
                    break;
                }
                out.push(blank(b[i]));
                i += 1;
            }
            continue;
        }
        // Char literal `'x'` / `'\n'` — but not lifetimes (`'a`, `'_`).
        if c == '\'' && i + 2 < n {
            let esc = b[i + 1] == '\\';
            let close = if esc { i + 3 } else { i + 2 };
            if close < n && b[close] == '\'' && (esc || b[i + 1] != '\'') {
                for _ in i..=close {
                    out.push(' ');
                }
                i = close + 1;
                continue;
            }
        }
        out.push(c);
        i += 1;
    }
    out
}

/// True if `code` (already stripped) contains `unsafe` as a standalone
/// token on this line — `unsafe_code` and `forbid(unsafe_code)` don't
/// count.
fn has_unsafe_token(line: &str) -> bool {
    let mut rest = line;
    while let Some(pos) = rest.find("unsafe") {
        let before_ok = pos == 0
            || !rest[..pos]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = rest[pos + "unsafe".len()..].chars().next();
        let after_ok = !after.is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        rest = &rest[pos + "unsafe".len()..];
    }
    false
}

/// True if any of the `COMMENT_WINDOW` raw lines ending at `line_idx`
/// (0-based, inclusive) contains the given audit tag.
fn has_nearby_tag(raw_lines: &[&str], line_idx: usize, tag: &str) -> bool {
    let lo = line_idx.saturating_sub(COMMENT_WINDOW);
    raw_lines[lo..=line_idx].iter().any(|l| l.contains(tag))
}

/// Audits one file's source text. `rel` is the path reported in
/// findings; rules are selected by where the file sits relative to the
/// root (allowlisted or not, inside `crates/mc` or not).
pub fn audit_source(rel: &Path, src: &str, report: &mut AuditReport) {
    let rel_str = rel.to_string_lossy().replace('\\', "/");
    let allowlisted = UNSAFE_ALLOWLIST.iter().any(|a| rel_str == *a);
    let in_mc = rel_str.starts_with("crates/mc/");
    let stripped = strip_comments_and_strings(src);
    let raw_lines: Vec<&str> = src.lines().collect();

    report.files_scanned += 1;
    for (idx, line) in stripped.lines().enumerate() {
        if idx >= raw_lines.len() {
            break;
        }
        if has_unsafe_token(line) {
            if !allowlisted {
                report.findings.push(AuditFinding {
                    file: rel.to_path_buf(),
                    line: idx + 1,
                    rule: "unsafe-outside-allowlist",
                    message: format!(
                        "`unsafe` outside the audited allowlist ({}); if this \
                         is intentional, extend UNSAFE_ALLOWLIST in \
                         crates/check/src/audit.rs and add a SAFETY comment",
                        UNSAFE_ALLOWLIST.join(", ")
                    ),
                });
            } else if !has_nearby_tag(&raw_lines, idx, "SAFETY:") {
                report.findings.push(AuditFinding {
                    file: rel.to_path_buf(),
                    line: idx + 1,
                    rule: "unsafe-without-safety-comment",
                    message: format!(
                        "`unsafe` without a `// SAFETY:` comment within {COMMENT_WINDOW} \
                         lines stating the invariant that makes it sound"
                    ),
                });
            } else {
                report.audited_unsafe += 1;
            }
        }
        if !in_mc && line.contains("Ordering::Relaxed") {
            if has_nearby_tag(&raw_lines, idx, "RELAXED:") {
                report.audited_relaxed += 1;
            } else {
                report.findings.push(AuditFinding {
                    file: rel.to_path_buf(),
                    line: idx + 1,
                    rule: "relaxed-without-audit-comment",
                    message: format!(
                        "`Ordering::Relaxed` without a `// RELAXED:` comment within \
                         {COMMENT_WINDOW} lines justifying the weakest ordering"
                    ),
                });
            }
        }
    }
}

/// Audits a crate root (`lib.rs` / the `noc` binary root) for the
/// required blanket lint attribute.
fn audit_crate_root(root: &Path, rel: &Path, report: &mut AuditReport) {
    let Ok(src) = fs::read_to_string(root.join(rel)) else {
        return;
    };
    let rel_str = rel.to_string_lossy().replace('\\', "/");
    let in_unsafe_crate = rel_str.starts_with(UNSAFE_CRATE);
    let (required, rule) = if in_unsafe_crate {
        (
            "#![deny(unsafe_op_in_unsafe_fn)]",
            "unsafe-crate-missing-deny",
        )
    } else {
        ("#![forbid(unsafe_code)]", "crate-missing-forbid")
    };
    if src.contains(required) {
        report.guarded_roots += 1;
    } else {
        report.findings.push(AuditFinding {
            file: rel.to_path_buf(),
            line: 1,
            rule,
            message: format!("crate root must declare `{required}`"),
        });
    }
}

/// Recursively collects `.rs` files under `dir`, skipping build output,
/// VCS metadata and the deliberately-failing audit fixtures.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') || name == "fixtures" {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Runs the full audit over a workspace root: every `.rs` file under
/// `crates/`, `src/`, `tests/` and `examples/`, plus the crate-root lint
/// rule for each `crates/*/src/lib.rs` and the `noc` binary.
pub fn audit_workspace(root: &Path) -> io::Result<AuditReport> {
    let mut report = AuditReport::default();
    let mut files = Vec::new();
    for top in ["crates", "src", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs(&dir, &mut files)?;
        }
    }
    files.sort();
    for path in &files {
        let rel = path.strip_prefix(root).unwrap_or(path).to_path_buf();
        let src = fs::read_to_string(path)?;
        audit_source(&rel, &src, &mut report);
    }

    // Crate-root lint attributes.
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut roots: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.join("src/lib.rs").is_file())
            .collect();
        roots.sort();
        for krate in roots {
            let rel = krate
                .strip_prefix(root)
                .unwrap_or(&krate)
                .join("src/lib.rs");
            audit_crate_root(root, &rel, &mut report);
        }
    }
    if root.join("src/bin/noc.rs").is_file() {
        audit_crate_root(root, Path::new("src/bin/noc.rs"), &mut report);
    }
    Ok(report)
}

/// Audits the negative fixtures under `crates/check/fixtures/audit/`:
/// returns one report per fixture file. Each is expected to FAIL — the
/// caller (CLI `--fixtures`, CI) treats a passing fixture as the error.
pub fn audit_fixtures(root: &Path) -> io::Result<Vec<(PathBuf, AuditReport)>> {
    let dir = root.join("crates/check/fixtures/audit");
    let mut out = Vec::new();
    let mut files: Vec<PathBuf> = fs::read_dir(&dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    files.sort();
    for path in files {
        let src = fs::read_to_string(&path)?;
        let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
        // A fixture may open with `//@ as: <path>` to be audited as if it
        // sat at that path — how the SAFETY-comment rule (which only
        // applies inside the allowlist) gets negative coverage.
        let persona = src
            .lines()
            .next()
            .and_then(|l| l.strip_prefix("//@ as:"))
            .map(|p| PathBuf::from(p.trim()));
        let mut report = AuditReport::default();
        audit_source(persona.as_deref().unwrap_or(&rel), &src, &mut report);
        out.push((rel, report));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripper_removes_comments_and_strings_but_keeps_lines() {
        let src = "let a = \"unsafe\"; // unsafe in comment\n/* unsafe\n block */ let b = 1;\n";
        let s = strip_comments_and_strings(src);
        assert_eq!(s.lines().count(), src.lines().count());
        assert!(!s.contains("unsafe"));
        assert!(s.contains("let a"));
        assert!(s.contains("let b = 1;"));
    }

    #[test]
    fn stripper_keeps_escaped_newlines_in_strings() {
        let src = "let s = \"two \\\n     lines\";\nOrdering::Relaxed\n";
        let stripped = strip_comments_and_strings(src);
        assert_eq!(stripped.lines().count(), src.lines().count());
        let hit = stripped
            .lines()
            .position(|l| l.contains("Ordering::Relaxed"));
        assert_eq!(hit, Some(2), "line numbers shifted: {stripped:?}");
    }

    #[test]
    fn stripper_handles_raw_strings() {
        let src = "let re = r#\"unsafe { }\"#;\nlet x = 2;";
        let s = strip_comments_and_strings(src);
        assert!(!s.contains("unsafe"));
        assert!(s.contains("let x = 2;"));
    }

    #[test]
    fn unsafe_token_detection_ignores_identifiers() {
        assert!(has_unsafe_token("unsafe { foo() }"));
        assert!(has_unsafe_token("unsafe impl Sync for T {}"));
        assert!(!has_unsafe_token("#![forbid(unsafe_code)]"));
        assert!(!has_unsafe_token("deny(unsafe_op_in_unsafe_fn)"));
        assert!(!has_unsafe_token("let not_unsafe_here = 1;"));
    }

    #[test]
    fn unallowlisted_unsafe_is_flagged() {
        let mut r = AuditReport::default();
        audit_source(
            Path::new("crates/core/src/lib.rs"),
            "fn f() { unsafe { g() } }\n",
            &mut r,
        );
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, "unsafe-outside-allowlist");
    }

    #[test]
    fn allowlisted_unsafe_needs_safety_comment() {
        let rel = Path::new("crates/sim/src/network.rs");
        let mut bad = AuditReport::default();
        audit_source(rel, "fn f() { unsafe { g() } }\n", &mut bad);
        assert_eq!(bad.findings.len(), 1);
        assert_eq!(bad.findings[0].rule, "unsafe-without-safety-comment");

        let mut good = AuditReport::default();
        audit_source(
            rel,
            "// SAFETY: g is sound here.\nunsafe { g() }\n",
            &mut good,
        );
        assert!(good.passed(), "{:?}", good.findings);
        assert_eq!(good.audited_unsafe, 1);
    }

    #[test]
    fn relaxed_needs_annotation_outside_mc() {
        let rel = Path::new("crates/obs/src/progress.rs");
        let mut bad = AuditReport::default();
        audit_source(rel, "x.load(Ordering::Relaxed);\n", &mut bad);
        assert_eq!(bad.findings.len(), 1);
        assert_eq!(bad.findings[0].rule, "relaxed-without-audit-comment");

        let mut good = AuditReport::default();
        audit_source(
            rel,
            "// RELAXED: monotonic counter, no ordering needed.\nx.load(Ordering::Relaxed);\n",
            &mut good,
        );
        assert!(good.passed());

        let mut mc = AuditReport::default();
        audit_source(
            Path::new("crates/mc/src/protocol.rs"),
            "done_reset: Ordering::Relaxed,\n",
            &mut mc,
        );
        assert!(mc.passed(), "mc's modeled orderings are exempt");
    }
}
