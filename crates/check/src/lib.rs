#![forbid(unsafe_code)]
//! Static deadlock/liveness verifier for sparse VC configurations.
//!
//! Given a topology, a routing relation and a [`VcAllocSpec`], the checker:
//!
//! 1. builds the **channel-dependency graph** (Dally–Seitz, extended across
//!    the paper's sparse VC→VC transition masks) and proves deadlock
//!    freedom by acyclicity — or prints a minimal offending cycle
//!    ([`cdg`]);
//! 2. runs **VC reachability / starvation analysis**: unreachable channels,
//!    channels with no escape path to an ejection port, unused legal class
//!    transitions, and dateline correctness on torus rings;
//! 3. validates **allocator wiring**: separable stage dimensions, wavefront
//!    matrix shape, and speculation-mask consistency between the VC/switch
//!    allocators of `noc-core` ([`wiring`]).
//!
//! The `noc check` CLI subcommand drives these over the paper's designs and
//! the bench workload matrix; [`fixtures`] provides deliberately-deadlocked
//! designs the checker must reject.

pub mod audit;
pub mod cdg;
pub mod fixtures;
pub mod model;
pub mod wiring;

pub use audit::{audit_fixtures, audit_workspace, AuditFinding, AuditReport};
pub use cdg::{ChannelDependencyGraph, Cycle};
pub use fixtures::Fixture;
pub use model::RouteModel;
pub use wiring::{validate_wiring, WiringReport};

use noc_core::VcAllocSpec;
use noc_sim::Topology;

/// Result of one full design check.
#[derive(Debug)]
pub struct CheckReport {
    /// Design name.
    pub label: String,
    /// Violations: the design is unsafe (deadlock, starvation, wiring bug).
    pub errors: Vec<String>,
    /// Suspicious but not unsafe findings (unreachable channels, unused
    /// transitions).
    pub warnings: Vec<String>,
    /// Summary of what was proven.
    pub info: Vec<String>,
}

impl CheckReport {
    /// True if no errors were found (warnings allowed).
    pub fn passed(&self) -> bool {
        self.errors.is_empty()
    }

    /// Renders the report for terminal output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let verdict = if self.passed() { "PASS" } else { "FAIL" };
        out.push_str(&format!("[{verdict}] {}\n", self.label));
        for e in &self.errors {
            out.push_str(&format!("  error: {e}\n"));
        }
        for w in &self.warnings {
            out.push_str(&format!("  warning: {w}\n"));
        }
        for i in &self.info {
            out.push_str(&format!("  {i}\n"));
        }
        out
    }
}

/// Cap on individually listed route-walk errors per report.
const MAX_LISTED: usize = 5;

/// Checks a fixture end to end.
pub fn check_fixture(f: &Fixture) -> CheckReport {
    check_design(&f.label, &f.topo, &f.model, &f.spec)
}

/// Runs the full static analysis of one design.
pub fn check_design(
    label: &str,
    topo: &Topology,
    model: &RouteModel,
    spec: &VcAllocSpec,
) -> CheckReport {
    let mut errors = Vec::new();
    let mut warnings = Vec::new();
    let mut info = Vec::new();

    info.push(format!(
        "design: {} {}x{} ({} routers, {} terminals), routing {}, spec {} (V = {})",
        topo.label(),
        topo.width,
        topo.height,
        topo.num_routers(),
        topo.num_terminals(),
        model.label(),
        spec.label(),
        spec.total_vcs()
    ));
    if spec.ports() != topo.ports {
        errors.push(format!(
            "spec is wired for {} ports but the topology has {}",
            spec.ports(),
            topo.ports
        ));
    }

    // 1. Channel-dependency graph.
    let graph = ChannelDependencyGraph::build(topo, model, spec);
    push_capped(&mut errors, &graph.walk_errors, "route errors");
    match graph.find_cycle() {
        Some(cycle) => errors.push(format!(
            "deadlock: channel-dependency cycle of length {}:\n{}",
            cycle.nodes.len(),
            cycle.display
        )),
        None => {
            let (total, used) = graph.channel_counts();
            info.push(format!(
                "channel-dependency graph acyclic ({} dependency edges over \
                 {used}/{total} channels per message class) — deadlock-free",
                graph.num_edges()
            ));
        }
    }

    // 2. Reachability / starvation.
    let starved = graph.starved_channels();
    if !starved.is_empty() {
        let names: Vec<String> = starved
            .iter()
            .take(6)
            .map(|&n| graph.node_label(n))
            .collect();
        errors.push(format!(
            "{} reachable channel(s) have no escape path to an ejection port \
             (e.g. {})",
            starved.len(),
            names.join("; ")
        ));
    }
    let unreachable = graph.unreachable_channels();
    if !unreachable.is_empty() {
        let names: Vec<String> = unreachable
            .iter()
            .take(6)
            .map(|&n| graph.node_label(n))
            .collect();
        warnings.push(format!(
            "{} hardware channel(s) unreachable by any route (e.g. {})",
            unreachable.len(),
            names.join("; ")
        ));
    }
    let rcs = spec.resource_classes();
    for from in 0..rcs {
        for to in 0..rcs {
            if spec.rc_legal(from, to) && !graph.used_transitions.contains(&(from, to)) {
                warnings.push(format!(
                    "legal resource-class transition {from} -> {to} never \
                     exercised by any route"
                ));
            }
        }
    }
    if spec.msg_classes() > 1 {
        info.push(format!(
            "{} message classes are symmetric and never mix (§4.2); the \
             analysis covers one and applies to each",
            spec.msg_classes()
        ));
    }

    // 3. Allocator wiring.
    let wiring = validate_wiring(spec);
    errors.extend(wiring.errors);
    info.extend(wiring.info);

    CheckReport {
        label: label.to_string(),
        errors,
        warnings,
        info,
    }
}

fn push_capped(dst: &mut Vec<String>, src: &[String], what: &str) {
    for e in src.iter().take(MAX_LISTED) {
        dst.push(e.clone());
    }
    if src.len() > MAX_LISTED {
        dst.push(format!(
            "... and {} more {what} of the same kind",
            src.len() - MAX_LISTED
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_designs_are_deadlock_free() {
        for label in ["mesh", "fbfly", "torus"] {
            for c in [1usize, 2] {
                let f = fixtures::paper_design(label, c);
                let rep = check_fixture(&f);
                assert!(rep.passed(), "{}:\n{}", f.label, rep.render());
            }
        }
    }

    #[test]
    fn torus_without_dateline_is_deadlocked_with_named_cycle() {
        let f = fixtures::torus_no_dateline(2);
        let rep = check_fixture(&f);
        assert!(!rep.passed());
        let cycle = rep
            .errors
            .iter()
            .find(|e| e.contains("channel-dependency cycle"))
            .expect("cycle error missing");
        // The minimal torus ring cycle has length 8 and names channels.
        assert!(cycle.contains("router"), "{cycle}");
        assert!(cycle.contains("cycle closes"), "{cycle}");
    }

    #[test]
    fn cyclic_vc_transition_mask_is_deadlocked() {
        let f = fixtures::cyclic_vc_transitions(2);
        let rep = check_fixture(&f);
        assert!(!rep.passed());
        assert!(
            rep.errors
                .iter()
                .any(|e| e.contains("channel-dependency cycle")),
            "{}",
            rep.render()
        );
    }

    #[test]
    fn mismatched_spec_ports_is_a_wiring_error() {
        let f = fixtures::paper_design("mesh", 2);
        let bad_spec = noc_core::VcAllocSpec::mesh(2).with_ports(10);
        let rep = check_design("mesh-bad-ports", &f.topo, &f.model, &bad_spec);
        assert!(!rep.passed());
        assert!(rep.errors.iter().any(|e| e.contains("wired for 10 ports")));
    }

    #[test]
    fn report_renders_verdict_and_findings() {
        let rep = CheckReport {
            label: "x".into(),
            errors: vec!["boom".into()],
            warnings: vec!["meh".into()],
            info: vec!["ok".into()],
        };
        assert!(!rep.passed());
        let r = rep.render();
        assert!(r.contains("[FAIL] x") && r.contains("error: boom") && r.contains("warning: meh"));
    }
}
