//! Route models the static checker can walk.
//!
//! The checker normally replays the simulator's own routing functions
//! ([`RouteModel::Simulator`]); the other variants are deliberately broken
//! routing relations used as negative fixtures — designs the checker must
//! classify as deadlock-prone.

use noc_sim::packet::{Lookahead, RouteState};
use noc_sim::routing::{route_at, RoutingKind, RC_MIN, RC_NONMIN};
use noc_sim::Topology;

/// A routing relation to analyze.
#[derive(Clone, Copy, Debug)]
pub enum RouteModel {
    /// One of the simulator's routing functions (DOR, UGAL, torus dateline).
    Simulator(RoutingKind),
    /// Negative fixture: shortest-direction torus DOR with **no** dateline
    /// classes — every hop stays in resource class 0, so each ring's
    /// channels form a dependency cycle (the classic Dally–Seitz example).
    TorusNoDateline,
    /// Negative fixture: torus DOR whose resource class alternates on every
    /// hop. Each individual transition is legal under the rc_succ mask
    /// `[[false, true], [true, false]]`, but on an even-length ring the
    /// alternation closes a dependency cycle — deadlock that only the
    /// global CDG analysis can see.
    AlternatingClass,
}

impl RouteModel {
    /// Display name for reports.
    pub fn label(&self) -> String {
        match self {
            RouteModel::Simulator(RoutingKind::DimensionOrder) => "dor".to_string(),
            RouteModel::Simulator(RoutingKind::Ugal { threshold }) => format!("ugal{threshold}"),
            RouteModel::Simulator(RoutingKind::TorusDateline) => "torus-dateline".to_string(),
            RouteModel::Simulator(RoutingKind::TorusNoDateline) => {
                "torus-no-dateline-sim".to_string()
            }
            RouteModel::TorusNoDateline => "torus-no-dateline".to_string(),
            RouteModel::AlternatingClass => "alternating-class".to_string(),
        }
    }

    /// Every distinct injection-time routing state a packet from `src` to
    /// `dest` can start with. UGAL enumerates the minimal route plus one
    /// Valiant route per non-degenerate intermediate; the deterministic
    /// models have a single state.
    pub fn initial_states(&self, topo: &Topology, src: usize, dest: usize) -> Vec<RouteState> {
        match self {
            RouteModel::Simulator(RoutingKind::Ugal { .. }) => {
                let (src_r, _) = topo.terminal_attach(src);
                let (dest_r, _) = topo.terminal_attach(dest);
                let mut states = vec![RouteState::default()];
                for i in 0..topo.num_routers() {
                    if i != src_r && i != dest_r {
                        states.push(RouteState {
                            intermediate: Some(i),
                            ..RouteState::default()
                        });
                    }
                }
                states
            }
            _ => vec![RouteState::default()],
        }
    }
}

/// Resource class of the VC a packet occupies at its injection channel —
/// mirrors `Terminal::try_start` in `noc-sim`.
pub fn injection_class(model: &RouteModel, state: &RouteState) -> usize {
    match model {
        RouteModel::Simulator(RoutingKind::Ugal { .. }) => {
            if state.intermediate.is_some() {
                RC_NONMIN
            } else {
                RC_MIN
            }
        }
        _ => 0,
    }
}

/// One routing decision at `router` for a packet in resource class
/// `current_rc` heading to terminal `dest`.
pub fn route_step(
    topo: &Topology,
    model: &RouteModel,
    router: usize,
    dest: usize,
    current_rc: usize,
    state: RouteState,
) -> (Lookahead, RouteState) {
    match model {
        RouteModel::Simulator(kind) => route_at(topo, *kind, router, dest, state),
        RouteModel::TorusNoDateline => {
            let (la, state) = torus_shortest(topo, router, dest, state);
            (
                Lookahead {
                    resource_class: 0,
                    ..la
                },
                state,
            )
        }
        RouteModel::AlternatingClass => {
            let (la, state) = torus_shortest(topo, router, dest, state);
            (
                Lookahead {
                    resource_class: 1 - current_rc,
                    ..la
                },
                state,
            )
        }
    }
}

/// Shortest-direction torus DOR (ties toward +), resource class left at 0 —
/// the direction logic of the simulator's dateline router without its class
/// discipline.
fn torus_shortest(
    topo: &Topology,
    router: usize,
    dest: usize,
    state: RouteState,
) -> (Lookahead, RouteState) {
    let (dest_router, tp) = topo.terminal_attach(dest);
    if router == dest_router {
        return (
            Lookahead {
                out_port: tp,
                resource_class: 0,
            },
            state,
        );
    }
    let (w, h) = (topo.width, topo.height);
    let (x, y) = topo.coords(router);
    let (tx, ty) = topo.coords(dest_router);
    let out_port = if x != tx {
        let fwd = (tx + w - x) % w;
        if fwd <= w - fwd {
            1
        } else {
            2
        }
    } else {
        let fwd = (ty + h - y) % h;
        if fwd <= h - fwd {
            3
        } else {
            4
        }
    };
    (
        Lookahead {
            out_port,
            resource_class: 0,
        },
        state,
    )
}
