//! Channel-dependency-graph construction and cycle analysis.
//!
//! Dally–Seitz: a routing relation is deadlock-free iff its channel
//! dependency graph is acyclic. We extend the classic formulation across
//! the paper's sparse VC structure: a *channel* here is one input VC class
//! `(router, input port, resource class)` — the class banks of §4.2 are
//! interchangeable within a class (a request covers every free bank), so
//! collapsing them preserves cycles exactly, and message classes never mix
//! (§4.2), so the same graph describes each of the `M` message classes.
//!
//! Edges come from exhaustive route walks: for every source/destination
//! terminal pair (and, for UGAL, every Valiant intermediate) the walker
//! replays the simulator's own routing function hop by hop, recording the
//! channel-to-channel dependencies a packet on that route would create and
//! cross-checking every resource-class transition against the
//! [`VcAllocSpec`] mask.

use noc_core::VcAllocSpec;
use noc_sim::Topology;
use std::collections::{HashMap, HashSet};

use crate::model::{injection_class, route_step, RouteModel};

/// One channel-to-channel dependency, with a witness route.
#[derive(Clone, Copy, Debug)]
pub struct Witness {
    /// Source terminal of the witness packet.
    pub src: usize,
    /// Destination terminal of the witness packet.
    pub dest: usize,
}

/// The channel-dependency graph of one (topology, routing, spec) design.
pub struct ChannelDependencyGraph {
    ports: usize,
    rcs: usize,
    routers: usize,
    label_kind: String,
    /// Deduplicated dependency edges.
    edges: HashSet<(u32, u32)>,
    /// First witness route per edge.
    witness: HashMap<(u32, u32), Witness>,
    /// Channels that exist in hardware (an upstream link or terminal
    /// injects into them), per `(router, port)` — classes share presence.
    present_port: Vec<bool>,
    /// Channels some route occupies.
    pub(crate) reachable: Vec<bool>,
    /// Channels from which some route ejects directly.
    escapes: Vec<bool>,
    /// Routing/spec mismatches found during the walks (illegal transitions,
    /// out-of-range classes, non-terminating routes, dateline violations).
    pub walk_errors: Vec<String>,
    /// Resource-class transitions the routing actually exercised.
    pub used_transitions: HashSet<(usize, usize)>,
}

/// A directed cycle in the channel-dependency graph.
#[derive(Clone, Debug)]
pub struct Cycle {
    /// The channels on the cycle, in dependency order.
    pub nodes: Vec<u32>,
    /// Human-readable rendering of the cycle.
    pub display: String,
}

impl ChannelDependencyGraph {
    /// Walks every route of `model` over `topo` and builds the dependency
    /// graph, validating each hop against `spec`'s transition mask.
    pub fn build(topo: &Topology, model: &RouteModel, spec: &VcAllocSpec) -> Self {
        let ports = topo.ports;
        let rcs = spec.resource_classes();
        let routers = topo.num_routers();
        let mut g = ChannelDependencyGraph {
            ports,
            rcs,
            routers,
            label_kind: topo.label().to_string(),
            edges: HashSet::new(),
            witness: HashMap::new(),
            present_port: vec![false; routers * ports],
            reachable: vec![false; routers * ports * rcs],
            escapes: vec![false; routers * ports * rcs],
            walk_errors: Vec::new(),
            used_transitions: HashSet::new(),
        };
        // Hardware channel presence: a port is an input channel when some
        // link or a terminal feeds it.
        for r in 0..routers {
            for p in 0..ports {
                if let Some(l) = topo.link(r, p) {
                    g.present_port[l.to_router * ports + l.to_port] = true;
                }
                if topo.port_terminal(r, p).is_some() {
                    g.present_port[r * ports + p] = true;
                }
            }
        }
        let terminals = topo.num_terminals();
        for src in 0..terminals {
            for dest in 0..terminals {
                if src == dest {
                    continue;
                }
                for state0 in model.initial_states(topo, src, dest) {
                    g.walk(topo, model, spec, src, dest, state0);
                }
            }
        }
        g
    }

    fn node(&self, router: usize, port: usize, rc: usize) -> u32 {
        ((router * self.ports + port) * self.rcs + rc) as u32
    }

    /// Human-readable channel name, e.g. `router 12 (4,1) in -x class 0`.
    pub fn node_label(&self, node: u32) -> String {
        let rc = node as usize % self.rcs;
        let rp = node as usize / self.rcs;
        let (router, port) = (rp / self.ports, rp % self.ports);
        let port_name = if self.ports == 5 {
            ["term", "+x", "-x", "+y", "-y"][port].to_string()
        } else {
            format!("p{port}")
        };
        format!("router {router} in {port_name} class {rc}")
    }

    fn walk(
        &mut self,
        topo: &Topology,
        model: &RouteModel,
        spec: &VcAllocSpec,
        src: usize,
        dest: usize,
        state0: noc_sim::packet::RouteState,
    ) {
        let (mut router, inj_port) = topo.terminal_attach(src);
        let mut rc = injection_class(model, &state0);
        if rc >= self.rcs {
            self.walk_errors.push(format!(
                "route {src}->{dest}: injection class {rc} out of range (R = {})",
                self.rcs
            ));
            return;
        }
        let mut node = self.node(router, inj_port, rc);
        self.reachable[node as usize] = true;
        let mut state = state0;
        let max_hops = 4 * (topo.width + topo.height) + 16;
        let is_torus = self.label_kind == "torus";
        for _hop in 0..max_hops {
            let (la, next_state) = route_step(topo, model, router, dest, rc, state);
            state = next_state;
            let next_rc = la.resource_class;
            if next_rc >= self.rcs {
                self.walk_errors.push(format!(
                    "route {src}->{dest} at router {router}: routing requests \
                     resource class {next_rc} but the spec has only {} classes",
                    self.rcs
                ));
                return;
            }
            if !spec.rc_legal(rc, next_rc) {
                self.walk_errors.push(format!(
                    "route {src}->{dest} at router {router}: routing requires \
                     transition {rc} -> {next_rc}, illegal under the spec's \
                     rc_succ mask (packet would stall forever)"
                ));
                return;
            }
            self.used_transitions.insert((rc, next_rc));
            if topo.port_terminal(router, la.out_port).is_some() {
                // Ejection: the ideal sink always drains, so the walk ends.
                self.escapes[node as usize] = true;
                return;
            }
            let Some(link) = topo.link(router, la.out_port) else {
                self.walk_errors.push(format!(
                    "route {src}->{dest} at router {router}: routing selected \
                     nonexistent output port {}",
                    la.out_port
                ));
                return;
            };
            // Torus dateline rule: any hop crossing a wraparound edge must
            // land in the post-dateline class.
            if is_torus && wraps(topo, router, la.out_port) && next_rc == 0 {
                self.walk_errors.push(format!(
                    "route {src}->{dest}: wraparound edge at router {router} \
                     crossed in pre-dateline class 0 (dateline violation)"
                ));
            }
            let next = self.node(link.to_router, link.to_port, next_rc);
            let e = (node, next);
            if self.edges.insert(e) {
                self.witness.entry(e).or_insert(Witness { src, dest });
            }
            self.reachable[next as usize] = true;
            node = next;
            router = link.to_router;
            rc = next_rc;
        }
        self.walk_errors.push(format!(
            "route {src}->{dest}: did not reach its destination within \
             {max_hops} hops (possible livelock)"
        ));
    }

    /// Number of deduplicated dependency edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Hardware channels (per message class) and how many some route uses.
    pub fn channel_counts(&self) -> (usize, usize) {
        let total = self
            .present_port
            .iter()
            .filter(|&&p| p)
            .count()
            .saturating_mul(self.rcs);
        let used = self.reachable.iter().filter(|&&r| r).count();
        (total, used)
    }

    /// Hardware channels no route ever occupies.
    pub fn unreachable_channels(&self) -> Vec<u32> {
        let mut out = Vec::new();
        for rp in 0..self.routers * self.ports {
            if !self.present_port[rp] {
                continue;
            }
            for rc in 0..self.rcs {
                let n = (rp * self.rcs + rc) as u32;
                if !self.reachable[n as usize] {
                    out.push(n);
                }
            }
        }
        out
    }

    /// Channels some route occupies but from which no route suffix reaches
    /// an ejection port — packets there are starved of an escape path.
    pub fn starved_channels(&self) -> Vec<u32> {
        // Co-reachability to ejection over the dependency edges.
        let n = self.reachable.len();
        let mut rev: Vec<Vec<u32>> = vec![Vec::new(); n];
        for &(a, b) in &self.edges {
            rev[b as usize].push(a);
        }
        let mut can_escape = self.escapes.clone();
        let mut stack: Vec<u32> = (0..n as u32).filter(|&i| can_escape[i as usize]).collect();
        while let Some(v) = stack.pop() {
            for &u in &rev[v as usize] {
                if !can_escape[u as usize] {
                    can_escape[u as usize] = true;
                    stack.push(u);
                }
            }
        }
        (0..n as u32)
            .filter(|&i| self.reachable[i as usize] && !can_escape[i as usize])
            .collect()
    }

    /// Finds a shortest cycle in the dependency graph, if any.
    pub fn find_cycle(&self) -> Option<Cycle> {
        let n = self.reachable.len();
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for &(a, b) in &self.edges {
            adj[a as usize].push(b);
        }
        for a in &mut adj {
            a.sort_unstable();
        }
        let sccs = tarjan_sccs(&adj);
        let cyclic: Vec<&Vec<u32>> = sccs.iter().filter(|s| s.len() > 1).collect();
        if cyclic.is_empty() {
            return None;
        }
        // Shortest cycle across the cyclic SCCs: BFS back to each start
        // node within its component (components are small; cap the starts).
        let mut best: Option<Vec<u32>> = None;
        for scc in cyclic {
            let members: HashSet<u32> = scc.iter().copied().collect();
            for &start in scc.iter().take(64) {
                if let Some(cyc) = bfs_cycle(&adj, &members, start) {
                    if best.as_ref().is_none_or(|b| cyc.len() < b.len()) {
                        best = Some(cyc);
                    }
                }
            }
        }
        let nodes = best?;
        let mut display = String::new();
        for (i, &v) in nodes.iter().enumerate() {
            if i > 0 {
                display.push_str("\n    -> ");
            } else {
                display.push_str("    ");
            }
            display.push_str(&self.node_label(v));
            let next = nodes[(i + 1) % nodes.len()];
            if let Some(w) = self.witness.get(&(v, next)) {
                display.push_str(&format!("  [route {}->{}]", w.src, w.dest));
            }
        }
        display.push_str(&format!(
            "\n    -> {} (cycle closes)",
            self.node_label(nodes[0])
        ));
        Some(Cycle { nodes, display })
    }
}

/// True if router `router`'s output `port` crosses a torus wraparound edge
/// (mesh/torus port convention: 1 = +x, 2 = -x, 3 = +y, 4 = -y).
fn wraps(topo: &Topology, router: usize, port: usize) -> bool {
    let (x, y) = topo.coords(router);
    match port {
        1 => x == topo.width - 1,
        2 => x == 0,
        3 => y == topo.height - 1,
        4 => y == 0,
        _ => false,
    }
}

/// Iterative Tarjan strongly-connected components.
fn tarjan_sccs(adj: &[Vec<u32>]) -> Vec<Vec<u32>> {
    let n = adj.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs = Vec::new();
    // Explicit DFS frames: (node, next-child position).
    let mut frames: Vec<(u32, usize)> = Vec::new();
    for root in 0..n as u32 {
        if index[root as usize] != usize::MAX {
            continue;
        }
        frames.push((root, 0));
        while let Some(&mut (v, ref mut ci)) = frames.last_mut() {
            let vu = v as usize;
            if *ci == 0 {
                index[vu] = next_index;
                low[vu] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[vu] = true;
            }
            if let Some(&w) = adj[vu].get(*ci) {
                *ci += 1;
                let wu = w as usize;
                if index[wu] == usize::MAX {
                    frames.push((w, 0));
                } else if on_stack[wu] {
                    low[vu] = low[vu].min(index[wu]);
                }
            } else {
                frames.pop();
                if let Some(&(p, _)) = frames.last() {
                    low[p as usize] = low[p as usize].min(low[vu]);
                }
                if low[vu] == index[vu] {
                    let mut scc = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w as usize] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(scc);
                }
            }
        }
    }
    sccs
}

/// Shortest cycle through `start` using only edges inside `members`.
fn bfs_cycle(adj: &[Vec<u32>], members: &HashSet<u32>, start: u32) -> Option<Vec<u32>> {
    let mut parent: HashMap<u32, u32> = HashMap::new();
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(start);
    while let Some(v) = queue.pop_front() {
        for &w in &adj[v as usize] {
            if !members.contains(&w) {
                continue;
            }
            if w == start {
                // Reconstruct start -> ... -> v, cycle closes v -> start.
                let mut path = vec![v];
                let mut cur = v;
                while cur != start {
                    cur = parent[&cur];
                    path.push(cur);
                }
                path.reverse();
                return Some(path);
            }
            if let std::collections::hash_map::Entry::Vacant(e) = parent.entry(w) {
                e.insert(v);
                queue.push_back(w);
            }
        }
    }
    None
}
