// Negative fixture: an `unsafe` block in a crate that is not on the
// audit allowlist. `noc audit --fixtures` must report
// `unsafe-outside-allowlist` for the block below.

pub fn sneak_a_pointer_deref(p: *const u64) -> u64 {
    // Even a fully commented block is rejected — containment is by file,
    // not by explanation.
    unsafe { *p }
}
