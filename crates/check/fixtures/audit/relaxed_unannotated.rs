// Negative fixture: a relaxed-ordering atomic access with no audit
// annotation nearby. `noc audit --fixtures` must report
// `relaxed-without-audit-comment`.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn silent_relaxed(counter: &AtomicU64) -> u64 {
    counter.fetch_add(1, Ordering::Relaxed)
}
