//@ as: crates/sim/src/network.rs
// Negative fixture: audited *as if* it lived at the allowlisted path
// above, so the containment rule passes — but the block below carries no
// justifying comment, and `noc audit --fixtures` must report
// `unsafe-without-safety-comment`.

pub fn undocumented_unsafe(cells: &[core::cell::UnsafeCell<u64>]) -> u64 {
    let first = unsafe { &*cells[0].get() };
    *first
}
