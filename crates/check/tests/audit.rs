//! End-to-end audit runs: the real workspace must pass, and every
//! negative fixture must fail with the rule it was written to violate.

use noc_check::audit::{audit_fixtures, audit_workspace};
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    // crates/check -> crates -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

#[test]
fn workspace_audit_is_clean() {
    let report = audit_workspace(&workspace_root()).unwrap_or_else(|e| {
        panic!("audit walk failed: {e}");
    });
    assert!(report.passed(), "\n{}", report.render());
    // The audit only proves something if it actually saw the tree: the
    // unsafe protocol sites, the annotated Relaxed sites and one guarded
    // root per crate must all be present.
    assert!(report.files_scanned > 40, "{} files", report.files_scanned);
    assert!(
        report.audited_unsafe >= 5,
        "expected the shard protocol's SAFETY-commented sites, saw {}",
        report.audited_unsafe
    );
    assert!(
        report.audited_relaxed >= 5,
        "expected the annotated Relaxed sites, saw {}",
        report.audited_relaxed
    );
    assert!(
        report.guarded_roots >= 11,
        "expected every crate root plus the noc binary, saw {}",
        report.guarded_roots
    );
}

#[test]
fn every_negative_fixture_fails_its_rule() {
    let fixtures = audit_fixtures(&workspace_root()).unwrap_or_else(|e| {
        panic!("fixture walk failed: {e}");
    });
    assert!(
        fixtures.len() >= 3,
        "only {} fixtures found",
        fixtures.len()
    );
    let expected = [
        ("relaxed_unannotated", "relaxed-without-audit-comment"),
        ("unsafe_missing_safety", "unsafe-without-safety-comment"),
        ("unsafe_outside_allowlist", "unsafe-outside-allowlist"),
    ];
    for (stem, rule) in expected {
        let (_, report) = fixtures
            .iter()
            .find(|(p, _)| p.file_stem().is_some_and(|s| s == stem))
            .unwrap_or_else(|| panic!("fixture `{stem}` missing"));
        assert!(!report.passed(), "fixture `{stem}` passed the audit");
        assert!(
            report.findings.iter().any(|f| f.rule == rule),
            "fixture `{stem}` did not trip `{rule}`: {:?}",
            report.findings
        );
    }
}
