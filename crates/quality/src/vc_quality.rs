//! VC-allocator matching quality (Figure 7).

use crate::sweep::{QualityCurve, QualityPoint};
use noc_core::{AllocatorKind, BitMatrix, DenseVcAllocator, VcAllocSpec, VcAllocator, VcRequest};
use rand::{Rng, SeedableRng};

/// Configuration of a VC-allocation quality sweep.
#[derive(Clone, Debug)]
pub struct VcQualityConfig {
    /// Router/class configuration (design point).
    pub spec: VcAllocSpec,
    /// Request matrices per data point (the paper uses 10 000).
    pub trials: usize,
    /// RNG seed; identical seeds give identical request sequences across
    /// allocator kinds, as in the paper's methodology.
    pub seed: u64,
}

impl VcQualityConfig {
    /// Sweep configuration with the paper's trial count.
    pub fn paper(spec: VcAllocSpec) -> Self {
        VcQualityConfig {
            spec,
            trials: crate::PAPER_TRIALS,
            seed: 0x5c09,
        }
    }
}

/// Draws one open-loop VC-allocation workload: each input VC issues a
/// request with probability `rate`, to a uniformly random output port, for a
/// single uniformly chosen successor resource class (the routing function
/// has already decided the class by the time VC allocation happens).
/// All output VCs are free — the open-loop setting of §3.1.
pub fn random_vc_requests(
    spec: &VcAllocSpec,
    rng: &mut impl Rng,
    rate: f64,
) -> Vec<Option<VcRequest>> {
    let v = spec.total_vcs();
    (0..spec.ports() * v)
        .map(|g| {
            if rng.gen_bool(rate) {
                let (_, ir, _) = spec.vc_class(g % v);
                let succ = spec.rc_successors(ir);
                let class = succ[rng.gen_range(0..succ.len())];
                Some(VcRequest::one_class(rng.gen_range(0..spec.ports()), class))
            } else {
                None
            }
        })
        .collect()
}

/// Runs the Figure 7 sweep for one allocator architecture over the given
/// request rates and returns its quality curve.
pub fn vc_quality_curve(cfg: &VcQualityConfig, kind: AllocatorKind, rates: &[f64]) -> QualityCurve {
    let spec = &cfg.spec;
    let free = {
        // Open loop: every output VC is available in every trial.
        let mut f = BitMatrix::new(spec.ports(), spec.total_vcs());
        for p in 0..spec.ports() {
            for v in 0..spec.total_vcs() {
                f.set(p, v, true);
            }
        }
        f
    };
    let mut under_test = DenseVcAllocator::new(spec.clone(), kind);
    let mut reference = DenseVcAllocator::new(spec.clone(), AllocatorKind::MaxSize);
    let mut points = Vec::with_capacity(rates.len());
    for &rate in rates {
        // Re-seed per rate so every allocator kind sees the same matrices at
        // the same rate regardless of sweep order.
        let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed ^ (rate * 1e6) as u64);
        let mut grants = 0u64;
        let mut max_grants = 0u64;
        for _ in 0..cfg.trials {
            let reqs = random_vc_requests(spec, &mut rng, rate);
            grants += under_test
                .allocate(&reqs, &free)
                .iter()
                .filter(|g| g.is_some())
                .count() as u64;
            max_grants += reference
                .allocate(&reqs, &free)
                .iter()
                .filter(|g| g.is_some())
                .count() as u64;
        }
        points.push(QualityPoint {
            rate,
            grants,
            max_grants,
        });
    }
    QualityCurve {
        label: kind.family().to_string(),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(spec: VcAllocSpec) -> VcQualityConfig {
        VcQualityConfig {
            spec,
            trials: 300,
            seed: 99,
        }
    }

    #[test]
    fn quality_never_exceeds_one() {
        for kind in AllocatorKind::QUALITY_FIGURE_KINDS {
            let c = vc_quality_curve(&quick(VcAllocSpec::mesh(2)), kind, &[0.3, 0.8]);
            for p in &c.points {
                assert!(p.grants <= p.max_grants, "{kind:?} {p:?}");
            }
        }
    }

    #[test]
    fn single_vc_per_class_gives_quality_one() {
        // Figure 7(a)/(d): all three allocators have constant quality 1.
        for spec in [VcAllocSpec::mesh(1), VcAllocSpec::fbfly(1)] {
            for kind in AllocatorKind::QUALITY_FIGURE_KINDS {
                let c = vc_quality_curve(&quick(spec.clone()), kind, &[0.2, 0.6, 1.0]);
                assert!(
                    (c.min_quality() - 1.0).abs() < 1e-12,
                    "{kind:?} {} -> {}",
                    spec.label(),
                    c.min_quality()
                );
            }
        }
    }

    #[test]
    fn wavefront_is_maximum_for_vc_allocation() {
        // §4.3.2: the wavefront VC allocator yields matching quality 1 for
        // all configurations (class-structured requests make maximal =
        // maximum).
        for spec in [VcAllocSpec::mesh(4), VcAllocSpec::fbfly(2)] {
            let c = vc_quality_curve(&quick(spec.clone()), AllocatorKind::Wavefront, &[0.5, 1.0]);
            assert!(
                (c.min_quality() - 1.0).abs() < 1e-12,
                "{} -> {}",
                spec.label(),
                c.min_quality()
            );
        }
    }

    #[test]
    fn separable_quality_degrades_with_rate_and_vcs() {
        // Figure 7(c)/(f): separable quality decreases at higher injection
        // rates and larger C.
        let lo = vc_quality_curve(&quick(VcAllocSpec::mesh(4)), AllocatorKind::SepIfRr, &[0.1]);
        let hi = vc_quality_curve(&quick(VcAllocSpec::mesh(4)), AllocatorKind::SepIfRr, &[1.0]);
        assert!(
            hi.points[0].quality() < lo.points[0].quality(),
            "quality did not degrade: {} vs {}",
            lo.points[0].quality(),
            hi.points[0].quality()
        );
        assert!(hi.points[0].quality() < 0.99);
    }

    #[test]
    fn input_first_beats_output_first_under_load() {
        // §4.3.2: "Input-first allocation provides slightly better matching
        // here" — check at high rate on a multi-VC config.
        let spec = VcAllocSpec::fbfly(4);
        let cfg = VcQualityConfig {
            spec,
            trials: 400,
            seed: 7,
        };
        let qi = vc_quality_curve(&cfg, AllocatorKind::SepIfRr, &[1.0]).points[0].quality();
        let qo = vc_quality_curve(&cfg, AllocatorKind::SepOfRr, &[1.0]).points[0].quality();
        assert!(qi >= qo, "sep_if {qi} < sep_of {qo}");
    }
}
