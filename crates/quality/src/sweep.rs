//! Common result types for quality sweeps.

/// One data point of a matching-quality curve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QualityPoint {
    /// Request probability per input VC per cycle (figure x-axis).
    pub rate: f64,
    /// Total grants produced by the allocator under test.
    pub grants: u64,
    /// Total grants a maximum-size allocator produced on the same request
    /// sequence.
    pub max_grants: u64,
}

impl QualityPoint {
    /// Matching quality: `grants / max_grants` (§3.1), defined as 1 when no
    /// requests were generated at all.
    pub fn quality(&self) -> f64 {
        if self.max_grants == 0 {
            1.0
        } else {
            self.grants as f64 / self.max_grants as f64
        }
    }
}

/// A labeled matching-quality curve (one line in Figure 7 or 12).
#[derive(Clone, Debug)]
pub struct QualityCurve {
    /// Legend label, e.g. `sep_if`.
    pub label: String,
    /// Data points, in increasing rate order.
    pub points: Vec<QualityPoint>,
}

impl QualityCurve {
    /// Minimum quality across the sweep — the headline "up to X% worse"
    /// numbers in §4.3.2 compare curves at their worst points.
    pub fn min_quality(&self) -> f64 {
        self.points
            .iter()
            .map(QualityPoint::quality)
            .fold(f64::INFINITY, f64::min)
    }
}

/// The x-axis used by the paper's quality figures: rates from 0.05 to 1.0.
pub fn default_rates() -> Vec<f64> {
    (1..=20).map(|i| i as f64 * 0.05).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quality_ratio() {
        let p = QualityPoint {
            rate: 0.5,
            grants: 80,
            max_grants: 100,
        };
        assert!((p.quality() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn zero_requests_count_as_perfect() {
        let p = QualityPoint {
            rate: 0.0,
            grants: 0,
            max_grants: 0,
        };
        assert_eq!(p.quality(), 1.0);
    }

    #[test]
    fn default_rates_span_unit_interval() {
        let r = default_rates();
        assert_eq!(r.len(), 20);
        assert!((r[0] - 0.05).abs() < 1e-12);
        assert!((r[19] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn min_quality_over_curve() {
        let c = QualityCurve {
            label: "x".into(),
            points: vec![
                QualityPoint {
                    rate: 0.1,
                    grants: 99,
                    max_grants: 100,
                },
                QualityPoint {
                    rate: 0.5,
                    grants: 80,
                    max_grants: 100,
                },
                QualityPoint {
                    rate: 1.0,
                    grants: 90,
                    max_grants: 100,
                },
            ],
        };
        assert!((c.min_quality() - 0.8).abs() < 1e-12);
    }
}
