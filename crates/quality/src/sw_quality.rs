//! Switch-allocator matching quality (Figure 12).

use crate::sweep::{QualityCurve, QualityPoint};
use noc_core::{MaxSizeAllocator, SwitchAllocatorKind, SwitchRequests};
use rand::{Rng, SeedableRng};

/// Configuration of a switch-allocation quality sweep.
#[derive(Clone, Debug)]
pub struct SwQualityConfig {
    /// Router port count `P`.
    pub ports: usize,
    /// VCs per port `V`.
    pub vcs: usize,
    /// Request matrices per data point (the paper uses 10 000).
    pub trials: usize,
    /// RNG seed.
    pub seed: u64,
}

impl SwQualityConfig {
    /// Sweep configuration with the paper's trial count.
    pub fn paper(ports: usize, vcs: usize) -> Self {
        SwQualityConfig {
            ports,
            vcs,
            trials: crate::PAPER_TRIALS,
            seed: 0x5c09,
        }
    }
}

/// Draws one open-loop switch-allocation workload: each input VC requests a
/// uniformly random output port with probability `rate`.
pub fn random_sw_requests(
    ports: usize,
    vcs: usize,
    rng: &mut impl Rng,
    rate: f64,
) -> SwitchRequests {
    let mut r = SwitchRequests::new(ports, vcs);
    for i in 0..ports {
        for v in 0..vcs {
            if rng.gen_bool(rate) {
                r.request(i, v, rng.gen_range(0..ports));
            }
        }
    }
    r
}

/// The maximum number of switch grants possible for one request set.
///
/// Because at most one VC per input port can win, the upper bound is a
/// maximum matching on the *port-level* request graph: which VC carries the
/// grant does not change the count.
pub fn max_switch_grants(requests: &SwitchRequests) -> usize {
    MaxSizeAllocator::max_matching_size(&requests.port_matrix())
}

/// Runs the Figure 12 sweep for one switch-allocator architecture.
pub fn sw_quality_curve(
    cfg: &SwQualityConfig,
    kind: SwitchAllocatorKind,
    rates: &[f64],
) -> QualityCurve {
    let mut alloc = kind.build(cfg.ports, cfg.vcs);
    let mut points = Vec::with_capacity(rates.len());
    for &rate in rates {
        let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed ^ (rate * 1e6) as u64);
        let mut grants = 0u64;
        let mut max_grants = 0u64;
        for _ in 0..cfg.trials {
            let reqs = random_sw_requests(cfg.ports, cfg.vcs, &mut rng, rate);
            grants += alloc.allocate(&reqs).len() as u64;
            max_grants += max_switch_grants(&reqs) as u64;
        }
        points.push(QualityPoint {
            rate,
            grants,
            max_grants,
        });
    }
    QualityCurve {
        label: kind.label().split('/').next().unwrap_or("?").to_string(),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_arbiter::ArbiterKind;

    fn quick(ports: usize, vcs: usize) -> SwQualityConfig {
        SwQualityConfig {
            ports,
            vcs,
            trials: 400,
            seed: 3,
        }
    }

    const SEP_IF: SwitchAllocatorKind = SwitchAllocatorKind::SepIf(ArbiterKind::RoundRobin);
    const SEP_OF: SwitchAllocatorKind = SwitchAllocatorKind::SepOf(ArbiterKind::RoundRobin);
    const WF: SwitchAllocatorKind = SwitchAllocatorKind::Wavefront;

    #[test]
    fn port_level_bound_is_sound() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for kind in [SEP_IF, SEP_OF, WF] {
            let mut a = kind.build(5, 2);
            for _ in 0..200 {
                let reqs = random_sw_requests(5, 2, &mut rng, 0.5);
                assert!(
                    a.allocate(&reqs).len() <= max_switch_grants(&reqs),
                    "{kind:?}"
                );
            }
        }
    }

    #[test]
    fn low_load_quality_near_one_for_all() {
        // §5.3.2: "At low network loads, all three allocators generate
        // near-maximum matchings".
        for kind in [SEP_IF, SEP_OF, WF] {
            let c = sw_quality_curve(&quick(5, 2), kind, &[0.05]);
            assert!(
                c.points[0].quality() > 0.95,
                "{kind:?}: {}",
                c.points[0].quality()
            );
        }
    }

    #[test]
    fn ranking_under_load_wf_ge_sep_of_ge_sep_if() {
        // §5.3.2's qualitative ordering at medium-high rates on a multi-VC
        // configuration.
        let cfg = quick(10, 8);
        let q = |k| sw_quality_curve(&cfg, k, &[0.4]).points[0].quality();
        let (qi, qo, qw) = (q(SEP_IF), q(SEP_OF), q(WF));
        assert!(qw >= qo, "wf {qw} < sep_of {qo}");
        assert!(qo >= qi, "sep_of {qo} < sep_if {qi}");
        assert!(qi < 1.0, "sep_if unexpectedly perfect at load");
    }

    #[test]
    fn sep_if_flattens_with_many_vcs() {
        // §5.3.2: sep_if is limited to one request per input port into stage
        // 2; with V=8 at full rate its quality is notably below wavefront's.
        let cfg = quick(10, 8);
        let qi = sw_quality_curve(&cfg, SEP_IF, &[1.0]).points[0].quality();
        let qw = sw_quality_curve(&cfg, WF, &[1.0]).points[0].quality();
        assert!(qw - qi > 0.02, "wf {qw} vs sep_if {qi}");
    }

    #[test]
    fn wavefront_quality_recovers_at_saturation() {
        // §5.3.2: wavefront quality dips at moderate rates, then climbs back
        // as the maximum-size bound itself saturates at P grants; the
        // recovery needs enough VCs per port (mesh 2x1x4: P=5, V=8).
        let cfg = quick(5, 8);
        let c = sw_quality_curve(&cfg, WF, &[0.05, 0.4, 1.0]);
        let q: Vec<f64> = c.points.iter().map(QualityPoint::quality).collect();
        assert!(q[1] < q[0], "no dip: {q:?}");
        assert!(q[2] > q[1], "no recovery: {q:?}");
    }
}
