#![forbid(unsafe_code)]
//! Open-loop matching-quality evaluation (§3.1 of the paper).
//!
//! The paper assesses each allocator by feeding it 10 000 pseudo-random
//! request matrices at a given request rate and dividing the total number of
//! grants by the number a maximum-size allocator produces for the same
//! request sequence. This crate implements that harness for both VC
//! allocation (Figure 7) and switch allocation (Figure 12) workloads.
//!
//! Requests are generated independently per input VC ("requests per VC per
//! cycle" on the figures' x-axes); as §5.3.3 notes, this open-loop setup can
//! drive much higher request rates than a network sustains in steady state,
//! which is exactly why matching-quality differences overstate network-level
//! differences.

pub mod sw_quality;
pub mod sweep;
pub mod vc_quality;

pub use sw_quality::{sw_quality_curve, SwQualityConfig};
pub use sweep::{default_rates, QualityCurve, QualityPoint};
pub use vc_quality::{vc_quality_curve, VcQualityConfig};

/// Number of pseudo-random request matrices per data point used by the
/// paper (§3.1).
pub const PAPER_TRIALS: usize = 10_000;
