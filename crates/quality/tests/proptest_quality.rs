//! Property-based tests on the quality-harness guarantees.

use noc_core::{MaxSizeAllocator, SwitchAllocatorKind, SwitchRequests};
use noc_quality::sw_quality::{max_switch_grants, random_sw_requests};
use proptest::prelude::*;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn port_level_bound_matches_bipartite_maximum(
        seed in 0u64..1000,
        ports in 2usize..8,
        vcs in 1usize..5,
        rate in 0.05f64..1.0
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let reqs = random_sw_requests(ports, vcs, &mut rng, rate);
        let bound = max_switch_grants(&reqs);
        // The bound equals a maximum matching of the port graph...
        prop_assert_eq!(
            bound,
            MaxSizeAllocator::max_matching_size(&reqs.port_matrix())
        );
        // ...and no allocator exceeds it.
        for kind in [
            SwitchAllocatorKind::SepIf(noc_arbiter::ArbiterKind::RoundRobin),
            SwitchAllocatorKind::Wavefront,
        ] {
            let mut a = kind.build(ports, vcs);
            prop_assert!(a.allocate(&reqs).len() <= bound, "{kind:?}");
        }
    }

    #[test]
    fn wavefront_switch_quality_at_least_half(
        seed in 0u64..500,
        ports in 2usize..8,
        vcs in 1usize..5,
        rate in 0.05f64..1.0
    ) {
        // Maximal matchings are 2-approximations of maximum ones; the
        // wavefront port-level matching is maximal, so over any request
        // sequence its total grants are at least half the bound.
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut wf = SwitchAllocatorKind::Wavefront.build(ports, vcs);
        let mut got = 0usize;
        let mut bound = 0usize;
        for _ in 0..20 {
            let reqs = random_sw_requests(ports, vcs, &mut rng, rate);
            got += wf.allocate(&reqs).len();
            bound += max_switch_grants(&reqs);
        }
        prop_assert!(2 * got >= bound, "wf {got} < {bound}/2");
    }

    #[test]
    fn request_generator_hits_the_rate(seed in 0u64..200, rate in 0.1f64..0.9) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let (ports, vcs, trials) = (8usize, 8usize, 60usize);
        let mut active = 0usize;
        for _ in 0..trials {
            let reqs = random_sw_requests(ports, vcs, &mut rng, rate);
            for i in 0..ports {
                for v in 0..vcs {
                    if reqs.get(i, v).is_some() {
                        active += 1;
                    }
                }
            }
        }
        let got = active as f64 / (ports * vcs * trials) as f64;
        prop_assert!((got - rate).abs() < 0.08, "rate {rate} -> {got}");
    }

    #[test]
    fn empty_requests_never_counted(ports in 2usize..6, vcs in 1usize..4) {
        let reqs = SwitchRequests::new(ports, vcs);
        prop_assert_eq!(max_switch_grants(&reqs), 0);
    }
}
