//! Netlist optimization passes modeling "synthesize for minimum cycle time".
//!
//! Design Compiler reaches its minimum-cycle-time result mainly through
//! buffer-tree insertion on high-fanout nets and upsizing of gates on the
//! critical path. We model both:
//!
//! * [`buffer_high_fanout`] caps the fanout any single driver sees by
//!   inserting balanced buffer trees — this is what tames the huge request
//!   broadcast nets of the replicated wavefront arrays (at an area/power
//!   cost, reproducing the paper's observation that "synthesis tries to
//!   compensate ... by using faster — and therefore, larger — gates").
//! * [`size_critical_path`] iteratively upsizes the cells on the worst path
//!   until the cycle time stops improving.

use crate::cell::{CellKind, CellLibrary};
use crate::netlist::{NetId, Netlist};
use crate::sta;

/// Maximum fanout before a buffer tree is inserted.
pub const DEFAULT_MAX_FANOUT: usize = 6;

/// Upsizing factor per sizing iteration.
const SIZE_STEP: f64 = 1.5;
/// Maximum drive size (library granularity limit).
const MAX_SIZE: f64 = 16.0;

/// Inserts balanced buffer trees on nets whose fanout exceeds `max_fanout`.
/// Returns the number of buffers inserted.
pub fn buffer_high_fanout(netlist: &mut Netlist, max_fanout: usize) -> usize {
    assert!(max_fanout >= 2);
    let mut inserted = 0usize;
    // Iterate until no net exceeds the limit (inserted buffers can
    // themselves fan out, but the tree construction keeps them within
    // bounds, so one sweep over original nets suffices; loop defensively).
    loop {
        // sink = (cell index, pin index); DFF D pins are rewired too.
        let mut sinks: Vec<Vec<(usize, usize)>> = vec![Vec::new(); netlist.num_nets()];
        for (ci, c) in netlist.cells().iter().enumerate() {
            for (pi, &n) in c.inputs.iter().enumerate() {
                sinks[n].push((ci, pi));
            }
        }
        let mut dff_sinks: Vec<Vec<usize>> = vec![Vec::new(); netlist.num_nets()];
        for (di, d) in netlist.dffs().iter().enumerate() {
            dff_sinks[d.d].push(di);
        }
        let offenders: Vec<NetId> = (0..netlist.num_nets())
            .filter(|&n| sinks[n].len() + dff_sinks[n].len() > max_fanout)
            .collect();
        if offenders.is_empty() {
            return inserted;
        }
        for net in offenders {
            // Group all sinks into chunks of max_fanout, each fed by a new
            // buffer; the buffers themselves become the net's only sinks.
            let cell_pins = std::mem::take(&mut sinks[net]);
            let dff_pins = std::mem::take(&mut dff_sinks[net]);
            let total = cell_pins.len() + dff_pins.len();
            let num_bufs = total.div_ceil(max_fanout);
            let bufs: Vec<NetId> = (0..num_bufs)
                .map(|_| netlist.cell(CellKind::Buf, &[net]))
                .collect();
            inserted += num_bufs;
            let mut k = 0usize;
            for (ci, pi) in cell_pins {
                netlist.cells_mut()[ci].inputs[pi] = bufs[k / max_fanout];
                k += 1;
            }
            for di in dff_pins {
                netlist.set_dff_d(di, bufs[k / max_fanout]);
                k += 1;
            }
        }
    }
}

/// Iteratively upsizes critical-path cells until the minimum cycle time
/// stops improving. Returns the number of sizing iterations applied.
pub fn size_critical_path(
    netlist: &mut Netlist,
    lib: &CellLibrary,
    max_iterations: usize,
) -> usize {
    // Sizing never changes connectivity, so one topological order serves
    // every iteration.
    let order = netlist.topo_order();
    let cycle = |nl: &Netlist| {
        let loads = nl.net_loads_ff(lib);
        let arrival = sta::arrival_times_with_order(nl, lib, &loads, &order);
        let (c, ep) = sta::min_cycle_from_arrivals(nl, lib, &arrival);
        (c, ep, arrival)
    };
    let (mut best, _, _) = cycle(netlist);
    for iter in 0..max_iterations {
        let (_, endpoint, arrival) = cycle(netlist);
        let path = sta::critical_path_cells(netlist, &arrival, endpoint);
        if path.is_empty() {
            return iter;
        }
        let mut changed = false;
        let old_sizes: Vec<(usize, f64)> = path
            .iter()
            .map(|&ci| (ci, netlist.cells()[ci].size))
            .collect();
        for &ci in &path {
            let s = netlist.cells()[ci].size;
            if s < MAX_SIZE {
                netlist.cells_mut()[ci].size = (s * SIZE_STEP).min(MAX_SIZE);
                changed = true;
            }
        }
        if !changed {
            return iter;
        }
        let (new_cycle, _, _) = cycle(netlist);
        if new_cycle >= best - 1e-6 {
            // No improvement: revert and stop.
            for (ci, s) in old_sizes {
                netlist.cells_mut()[ci].size = s;
            }
            return iter;
        }
        best = new_cycle;
    }
    max_iterations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffering_preserves_function() {
        let mut nl = Netlist::new("fanout");
        let a = nl.input();
        let b = nl.input();
        let x = nl.and2(a, b);
        // 20 sinks on x.
        for _ in 0..20 {
            let s = nl.not(x);
            nl.output(s);
        }
        let before: Vec<(Vec<bool>, Vec<bool>)> = (0..4u32)
            .map(|t| {
                let inp = vec![t & 1 != 0, t & 2 != 0];
                let (o, s) = nl.eval(&inp, &[]);
                (o, s)
            })
            .collect();
        let n = buffer_high_fanout(&mut nl, 4);
        assert!(n >= 5, "expected a buffer tree, got {n}");
        nl.validate().unwrap();
        for (t, (o_ref, _)) in before.iter().enumerate() {
            let inp = vec![t & 1 != 0, t & 2 != 0];
            let (o, _) = nl.eval(&inp, &[]);
            assert_eq!(&o, o_ref);
        }
    }

    #[test]
    fn buffering_reduces_delay_on_huge_fanout() {
        let lib = CellLibrary::default();
        let mut nl = Netlist::new("huge");
        let a = nl.input();
        let x = nl.not(a);
        for _ in 0..64 {
            let s = nl.not(x);
            nl.output(s);
        }
        let before = sta::analyze(&nl, &lib).min_cycle_ns;
        buffer_high_fanout(&mut nl, DEFAULT_MAX_FANOUT);
        let after = sta::analyze(&nl, &lib).min_cycle_ns;
        assert!(after < before, "buffering should help: {before} -> {after}");
    }

    #[test]
    fn no_buffers_inserted_below_threshold() {
        let mut nl = Netlist::new("small");
        let a = nl.input();
        let x = nl.not(a);
        for _ in 0..3 {
            let s = nl.not(x);
            nl.output(s);
        }
        assert_eq!(buffer_high_fanout(&mut nl, 6), 0);
    }

    #[test]
    fn sizing_improves_loaded_path() {
        let lib = CellLibrary::default();
        let mut nl = Netlist::new("size");
        let mut n = nl.input();
        let other = nl.input();
        for _ in 0..10 {
            n = nl.and2(n, other);
        }
        // Heavy output load via many sinks.
        for _ in 0..6 {
            let s = nl.not(n);
            nl.output(s);
        }
        let before = sta::analyze(&nl, &lib).min_cycle_ns;
        let iters = size_critical_path(&mut nl, &lib, 40);
        let after = sta::analyze(&nl, &lib).min_cycle_ns;
        assert!(iters > 0);
        assert!(after < before, "sizing should help: {before} -> {after}");
    }

    #[test]
    fn sizing_increases_area() {
        let lib = CellLibrary::default();
        let mut nl = Netlist::new("sizearea");
        let mut n = nl.input();
        let other = nl.input();
        for _ in 0..8 {
            n = nl.and2(n, other);
        }
        nl.output(n);
        let before = nl.area_um2(&lib);
        size_critical_path(&mut nl, &lib, 40);
        assert!(nl.area_um2(&lib) >= before);
    }
}
