//! Wavefront allocator netlists (§2.2).
//!
//! Two implementation styles of the same loop-free wavefront function:
//!
//! - [`build_wavefront`] — the paper's choice: the `n × n` tile array is
//!   **replicated once per priority diagonal** and a one-hot multiplexer
//!   selects the replica matching the current diagonal register. `O(n³)`
//!   area, but the critical path is a single `n`-step wave plus the mux.
//! - [`build_wavefront_unrolled`] — the area-efficient alternative of Hurt
//!   et al. (ICC '99): one tile array evaluated over `2n-1` diagonal steps,
//!   with each diagonal processed by one of two "copies" (before/after the
//!   wrap point) gated on the diagonal register. `O(n²)` area, but up to
//!   `2n` wave steps on the path.
//!
//! Both are bit-exact with
//! [`WavefrontAllocator::allocate_with_diagonal`](noc_core::WavefrontAllocator)
//! at the registered diagonal, and advance the diagonal register only when
//! at least one request is present — matching how the behavioural switch
//! allocator invokes its wavefront core (it early-returns on empty requests
//! without touching state).
//!
//! The diagonal register is one-hot with all-zeros meaning diagonal 0, so a
//! power-on all-`false` flop state equals the models' reset state.

use crate::netlist::{NetId, Netlist};

/// An instantiated wavefront block.
pub struct WavefrontHw {
    /// Grant matrix, row-major: `grants[i * n + j]`.
    pub grants: Vec<NetId>,
}

/// Builds the one-hot diagonal register (all-zero ≡ diagonal 0), returning
/// the *effective* one-hot vector, and wires its advance-on-request update.
fn diagonal_register(nl: &mut Netlist, n: usize, any_req: NetId) -> Vec<NetId> {
    let (handles, q): (Vec<usize>, Vec<NetId>) = (0..n).map(|_| nl.dff_deferred()).unzip();
    let any_ptr = nl.or_tree(&q);
    let none_ptr = nl.not(any_ptr);
    let mut eff = q.clone();
    eff[0] = nl.or2(q[0], none_ptr);
    // next[d] = any_req ? eff[d-1] : q[d] (cyclic rotate by one).
    for d in 0..n {
        let rotated = eff[(d + n - 1) % n];
        let next = nl.mux2(q[d], rotated, any_req);
        nl.connect_dff(handles[d], next);
    }
    eff
}

/// Evaluates one full wave starting at diagonal `start` over evolving
/// row/column-free chains, writing grants into `grid[i * n + j]`.
fn wave_from(nl: &mut Netlist, reqs: &[NetId], n: usize, start: usize, grid: &mut [NetId]) {
    let one = nl.const1();
    let mut row_free = vec![one; n];
    let mut col_free = vec![one; n];
    for k in 0..n {
        let d = (start + k) % n;
        for i in 0..n {
            let j = (d + n - i) % n;
            let grant = nl.and_tree(&[reqs[i * n + j], row_free[i], col_free[j]]);
            let taken = nl.not(grant);
            row_free[i] = nl.and2(row_free[i], taken);
            col_free[j] = nl.and2(col_free[j], taken);
            grid[i * n + j] = grant;
        }
    }
}

/// Replicated-array wavefront over an `n × n` request matrix (row-major
/// `reqs[i * n + j]`). See the module docs for the area/delay trade-off.
pub fn build_wavefront(nl: &mut Netlist, reqs: &[NetId], n: usize) -> WavefrontHw {
    assert_eq!(reqs.len(), n * n, "request matrix must be n*n");
    if n == 1 {
        return WavefrontHw {
            grants: vec![reqs[0]],
        };
    }
    let any_req = nl.or_tree(reqs);
    let eff = diagonal_register(nl, n, any_req);
    let zero = nl.const0();
    let mut replicas: Vec<Vec<NetId>> = Vec::with_capacity(n);
    for start in 0..n {
        let mut grid = vec![zero; n * n];
        wave_from(nl, reqs, n, start, &mut grid);
        replicas.push(grid);
    }
    let mut grants = Vec::with_capacity(n * n);
    for cell in 0..n * n {
        let per_diag: Vec<NetId> = (0..n).map(|d| replicas[d][cell]).collect();
        grants.push(nl.onehot_mux(&eff, &per_diag));
    }
    WavefrontHw { grants }
}

/// Unrolled (Hurt et al.) wavefront: a single tile array stepped through
/// `2n - 1` diagonals, with each tile instantiated twice — once for the
/// pre-wrap pass (enabled when the wave has already started by that
/// diagonal) and once for the post-wrap pass (enabled otherwise).
pub fn build_wavefront_unrolled(nl: &mut Netlist, reqs: &[NetId], n: usize) -> WavefrontHw {
    assert_eq!(reqs.len(), n * n, "request matrix must be n*n");
    if n == 1 {
        return WavefrontHw {
            grants: vec![reqs[0]],
        };
    }
    let any_req = nl.or_tree(reqs);
    let eff = diagonal_register(nl, n, any_req);
    // started[d]: the priority diagonal is <= d, i.e. diagonal d belongs to
    // the first (pre-wrap) pass.
    let started = nl.prefix_or(&eff);
    let one = nl.const1();
    let mut row_free = vec![one; n];
    let mut col_free = vec![one; n];
    let mut acc: Vec<Option<NetId>> = vec![None; n * n];
    for step in 0..(2 * n - 1) {
        let d = step % n;
        let enable = if step < n {
            started[d]
        } else {
            nl.not(started[d])
        };
        for i in 0..n {
            let j = (d + n - i) % n;
            let grant = nl.and_tree(&[reqs[i * n + j], row_free[i], col_free[j], enable]);
            let taken = nl.not(grant);
            row_free[i] = nl.and2(row_free[i], taken);
            col_free[j] = nl.and2(col_free[j], taken);
            acc[i * n + j] = Some(match acc[i * n + j] {
                None => grant,
                Some(prev) => nl.or2(prev, grant),
            });
        }
    }
    WavefrontHw {
        grants: acc.into_iter().map(Option::unwrap).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_core::{BitMatrix, WavefrontAllocator};

    fn netlist(n: usize, unrolled: bool) -> Netlist {
        let mut nl = Netlist::new("wf_test");
        let reqs = nl.inputs_vec(n * n);
        let wf = if unrolled {
            build_wavefront_unrolled(&mut nl, &reqs, n)
        } else {
            build_wavefront(&mut nl, &reqs, n)
        };
        for &g in &wf.grants {
            nl.output(g);
        }
        nl.validate().unwrap();
        nl
    }

    /// Random request streams: netlist grants equal the model's pure
    /// function at the model's current diagonal, with the diagonal
    /// advancing only on non-empty requests.
    fn check_stream(n: usize, unrolled: bool) {
        let nl = netlist(n, unrolled);
        let model = WavefrontAllocator::new(n, n);
        let mut state = vec![false; nl.dffs().len()];
        let mut diagonal = 0usize;
        let mut x = 0x7afeu64;
        for step in 0..300 {
            let mut req = BitMatrix::new(n, n);
            let mut inputs = vec![false; n * n];
            for i in 0..n {
                for j in 0..n {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(99991);
                    if (x >> 40) & 3 == 0 {
                        req.set(i, j, true);
                        inputs[i * n + j] = true;
                    }
                }
            }
            let (outs, next) = nl.eval(&inputs, &state);
            let want = model.allocate_with_diagonal(&req, diagonal);
            for i in 0..n {
                for j in 0..n {
                    assert_eq!(
                        outs[i * n + j],
                        want.get(i, j),
                        "n={n} unrolled={unrolled} step={step} diag={diagonal} ({i},{j})"
                    );
                }
            }
            if req.count_ones() > 0 {
                diagonal = (diagonal + 1) % n;
            }
            state = next;
        }
    }

    #[test]
    fn replicated_matches_model() {
        for n in [1, 2, 3, 4, 5] {
            check_stream(n, false);
        }
    }

    #[test]
    fn unrolled_matches_model() {
        for n in [1, 2, 3, 4, 5] {
            check_stream(n, true);
        }
    }

    #[test]
    fn unrolled_is_smaller_than_replicated() {
        for n in [4usize, 8] {
            let r = netlist(n, false);
            let u = netlist(n, true);
            assert!(
                u.instance_count() < r.instance_count(),
                "n={n}: unrolled {} !< replicated {}",
                u.instance_count(),
                r.instance_count()
            );
        }
    }
}
