//! Arbiter netlists (§2.1): fixed-priority, round-robin, matrix.
//!
//! The round-robin arbiter is built exactly as described for the RTL in
//! `noc-arbiter`: a thermometer mask derived from the one-hot priority
//! pointer gates a first fixed-priority pass, and an unmasked second pass
//! takes over when the masked pass finds no requester. The matrix arbiter
//! stores only the upper triangle of its priority matrix in `n(n-1)/2`
//! flip-flops.
//!
//! State encodings are chosen so the all-`false` (round-robin) and
//! all-`true` (matrix) flop states correspond to the behavioural models'
//! power-on states: an empty one-hot pointer makes the masked pass vacuous,
//! which is exactly pointer-0 behaviour, and an all-true upper triangle is
//! the initial `0 > 1 > ... > n-1` order.

use crate::netlist::{NetId, Netlist};
use noc_arbiter::ArbiterKind;

/// Arbiter kinds with a hardware implementation (mirrors
/// [`noc_arbiter::ArbiterKind`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum HwArbiterKind {
    /// Priority encoder: lowest-index requester wins, no state.
    FixedPriority,
    /// Rotating-pointer round-robin (`rr` in the figure legends).
    RoundRobin,
    /// Least-recently-served matrix arbiter (`m` in the figure legends).
    Matrix,
}

impl HwArbiterKind {
    /// Short label used in netlist names (`fp`, `rr`, `m`).
    pub fn short_name(self) -> &'static str {
        match self {
            HwArbiterKind::FixedPriority => "fp",
            HwArbiterKind::RoundRobin => "rr",
            HwArbiterKind::Matrix => "m",
        }
    }
}

impl From<ArbiterKind> for HwArbiterKind {
    fn from(kind: ArbiterKind) -> Self {
        match kind {
            ArbiterKind::FixedPriority => HwArbiterKind::FixedPriority,
            ArbiterKind::RoundRobin => HwArbiterKind::RoundRobin,
            ArbiterKind::Matrix => HwArbiterKind::Matrix,
        }
    }
}

/// One-hot grant vector of a priority encoder: grant `i` iff request `i` is
/// set and no lower-indexed request is (`grant = req & ~prefix_or(req) >> 1`).
pub fn fixed_priority_grants(nl: &mut Netlist, reqs: &[NetId]) -> Vec<NetId> {
    match reqs.len() {
        0 => Vec::new(),
        1 => vec![reqs[0]],
        _ => {
            let below = nl.prefix_or(&reqs[..reqs.len() - 1]);
            let mut grants = vec![reqs[0]];
            for i in 1..reqs.len() {
                let clear = nl.not(below[i - 1]);
                grants.push(nl.and2(reqs[i], clear));
            }
            grants
        }
    }
}

/// An instantiated arbiter: combinational grants plus deferred priority
/// flops awaiting their commit logic.
///
/// The grant outputs are valid as soon as [`build_arbiter`] returns; the
/// netlist is only complete once one of the `commit_*` methods has wired the
/// state-update logic (every flop's D input). Allocators that veto an
/// arbiter's grant downstream (e.g. the input stage of a separable switch
/// allocator) pass the *committed* winner via [`HwArbiter::commit_with`] so
/// priority only advances on consumed grants, matching the behavioural
/// models' update rule.
pub struct HwArbiter {
    kind: HwArbiterKind,
    width: usize,
    /// One-hot grant vector (`width` nets).
    pub grants: Vec<NetId>,
    /// Q outputs of the priority flops.
    state_q: Vec<NetId>,
    /// Deferred-DFF handles, parallel to `state_q`.
    handles: Vec<usize>,
}

/// Builds an arbiter over `reqs`, leaving its priority flops deferred until
/// a `commit_*` call.
pub fn build_arbiter(nl: &mut Netlist, kind: HwArbiterKind, reqs: &[NetId]) -> HwArbiter {
    let n = reqs.len();
    assert!(n > 0, "arbiter needs at least one input");
    // Width-1 arbiters are wires in every architecture.
    if n == 1 || kind == HwArbiterKind::FixedPriority {
        let grants = if n == 1 {
            vec![reqs[0]]
        } else {
            fixed_priority_grants(nl, reqs)
        };
        return HwArbiter {
            kind,
            width: n,
            grants,
            state_q: Vec::new(),
            handles: Vec::new(),
        };
    }
    match kind {
        HwArbiterKind::FixedPriority => unreachable!(),
        HwArbiterKind::RoundRobin => {
            let (handles, q): (Vec<usize>, Vec<NetId>) = (0..n).map(|_| nl.dff_deferred()).unzip();
            // Thermometer mask: positions at or after the pointer. An empty
            // (all-zero) pointer register yields an empty mask, which the
            // unmasked fallback pass turns into pointer-0 behaviour.
            let mask = nl.prefix_or(&q);
            let masked: Vec<NetId> = reqs
                .iter()
                .zip(&mask)
                .map(|(&r, &m)| nl.and2(r, m))
                .collect();
            let masked_grants = fixed_priority_grants(nl, &masked);
            let any_masked = nl.or_tree(&masked);
            let none_masked = nl.not(any_masked);
            let fallback_grants = fixed_priority_grants(nl, reqs);
            let grants: Vec<NetId> = (0..n)
                .map(|i| {
                    let fb = nl.and2(none_masked, fallback_grants[i]);
                    nl.or2(masked_grants[i], fb)
                })
                .collect();
            HwArbiter {
                kind,
                width: n,
                grants,
                state_q: q,
                handles,
            }
        }
        HwArbiterKind::Matrix => {
            // Upper triangle only: u[(a, b)] with a < b means "a beats b".
            let (handles, q): (Vec<usize>, Vec<NetId>) =
                (0..n * (n - 1) / 2).map(|_| nl.dff_deferred()).unzip();
            let mut beats = vec![vec![None; n]; n];
            let mut idx = 0;
            for a in 0..n {
                for b in (a + 1)..n {
                    beats[a][b] = Some(q[idx]);
                    beats[b][a] = Some(nl.not(q[idx]));
                    idx += 1;
                }
            }
            let not_req: Vec<NetId> = reqs.iter().map(|&r| nl.not(r)).collect();
            let grants: Vec<NetId> = (0..n)
                .map(|i| {
                    // grant_i = req_i & AND_{j != i} (!req_j | beats(i, j))
                    let mut terms = vec![reqs[i]];
                    for j in 0..n {
                        if j != i {
                            let Some(b) = beats[i][j] else {
                                unreachable!("beats state exists for every i != j pair")
                            };
                            terms.push(nl.or2(not_req[j], b));
                        }
                    }
                    nl.and_tree(&terms)
                })
                .collect();
            HwArbiter {
                kind,
                width: n,
                grants,
                state_q: q,
                handles,
            }
        }
    }
}

impl HwArbiter {
    /// Commits priority state with the arbiter's own grants as the winner
    /// vector (the common case: every grant is consumed).
    pub fn commit_own_grants(self, nl: &mut Netlist) {
        let winner = self.grants.clone();
        self.commit_with(nl, &winner);
    }

    /// Commits priority state with an external one-hot winner vector (all
    /// zeros = hold). `winner` must be the arbiter's width.
    pub fn commit_with(self, nl: &mut Netlist, winner: &[NetId]) {
        assert_eq!(winner.len(), self.width, "winner width mismatch");
        if self.handles.is_empty() {
            return; // stateless: fixed-priority or width 1
        }
        let n = self.width;
        match self.kind {
            HwArbiterKind::FixedPriority => unreachable!("fixed priority holds no state"),
            HwArbiterKind::RoundRobin => {
                // On commit the pointer moves one past the winner:
                // next[j] = commit ? winner[j-1] : q[j] (cyclically).
                let commit = nl.or_tree(winner);
                for j in 0..n {
                    let rotated = winner[(j + n - 1) % n];
                    let d = nl.mux2(self.state_q[j], rotated, commit);
                    nl.connect_dff(self.handles[j], d);
                }
            }
            HwArbiterKind::Matrix => {
                // Winner's row clears, winner's column sets; an all-zero
                // winner leaves every pair unchanged, so no explicit commit
                // gating is needed: u' = !w[a] & (w[b] | u).
                let not_w: Vec<NetId> = winner.iter().map(|&w| nl.not(w)).collect();
                let mut idx = 0;
                for a in 0..n {
                    for b in (a + 1)..n {
                        let set = nl.or2(winner[b], self.state_q[idx]);
                        let d = nl.and2(not_w[a], set);
                        nl.connect_dff(self.handles[idx], d);
                        idx += 1;
                    }
                }
            }
        }
    }
}

/// A standalone `n`-input arbiter netlist: `n` request inputs, `n` one-hot
/// grant outputs, priority committed on every grant.
pub fn arbiter_netlist(kind: HwArbiterKind, n: usize) -> Netlist {
    let mut nl = Netlist::new(format!("arb_{}{}", kind.short_name(), n));
    let reqs = nl.inputs_vec(n);
    let arb = build_arbiter(&mut nl, kind, &reqs);
    for &g in &arb.grants {
        nl.output(g);
    }
    arb.commit_own_grants(&mut nl);
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_arbiter::{ArbiterKind, Bits};

    /// Drives the netlist and the behavioural model through every request
    /// pattern from every reachable state, checking one-hot-identical
    /// grants and identical state evolution.
    fn check_exhaustive(kind: HwArbiterKind, model_kind: ArbiterKind, n: usize) {
        let nl = arbiter_netlist(kind, n);
        nl.validate().unwrap();
        let init = match kind {
            HwArbiterKind::Matrix => vec![true; nl.dffs().len()],
            _ => vec![false; nl.dffs().len()],
        };
        // Walk a few hundred steps of a deterministic request sequence so
        // states stay synchronized between netlist and model.
        let mut state = init;
        let mut model = model_kind.build(n);
        let mut x = 0x5c09_2026u64;
        for step in 0..400 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let pattern = (x >> 32) as usize % (1 << n);
            let inputs: Vec<bool> = (0..n).map(|i| pattern >> i & 1 != 0).collect();
            let (outs, next) = nl.eval(&inputs, &state);
            let bits = Bits::from_indices(n, (0..n).filter(|&i| inputs[i]));
            let winner = model.arbitrate(&bits);
            let expect: Vec<bool> = (0..n).map(|i| winner == Some(i)).collect();
            assert_eq!(
                outs, expect,
                "{kind:?} n={n} step={step} pattern={pattern:b}"
            );
            if let Some(w) = winner {
                model.update(w);
            }
            state = next;
        }
    }

    #[test]
    fn round_robin_netlist_matches_model() {
        for n in 1..=6 {
            check_exhaustive(HwArbiterKind::RoundRobin, ArbiterKind::RoundRobin, n);
        }
    }

    #[test]
    fn matrix_netlist_matches_model() {
        for n in 1..=6 {
            check_exhaustive(HwArbiterKind::Matrix, ArbiterKind::Matrix, n);
        }
    }

    #[test]
    fn fixed_priority_netlist_matches_model() {
        for n in 1..=6 {
            check_exhaustive(HwArbiterKind::FixedPriority, ArbiterKind::FixedPriority, n);
        }
    }

    #[test]
    fn matrix_state_is_upper_triangle() {
        let nl = arbiter_netlist(HwArbiterKind::Matrix, 8);
        assert_eq!(nl.dffs().len(), 8 * 7 / 2);
        let nl = arbiter_netlist(HwArbiterKind::RoundRobin, 8);
        assert_eq!(nl.dffs().len(), 8);
    }

    #[test]
    fn width_one_arbiters_are_wires() {
        for kind in [
            HwArbiterKind::FixedPriority,
            HwArbiterKind::RoundRobin,
            HwArbiterKind::Matrix,
        ] {
            let nl = arbiter_netlist(kind, 1);
            nl.validate().unwrap();
            assert!(nl.dffs().is_empty());
            assert_eq!(nl.cells().len(), 0);
        }
    }

    #[test]
    fn kind_conversion_roundtrip() {
        assert_eq!(
            HwArbiterKind::from(ArbiterKind::RoundRobin),
            HwArbiterKind::RoundRobin
        );
        assert_eq!(
            HwArbiterKind::from(ArbiterKind::Matrix),
            HwArbiterKind::Matrix
        );
        assert_eq!(
            HwArbiterKind::from(ArbiterKind::FixedPriority),
            HwArbiterKind::FixedPriority
        );
    }
}
