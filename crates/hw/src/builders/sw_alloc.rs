//! Switch-allocator netlists (§5, Figures 8 and 9).
//!
//! Request inputs are one bit per `(input port, VC, output port)` triple,
//! laid out as `reqs[(i * V + v) * P + o]`. Outputs are the `P × P` crossbar
//! configuration (`xbar[i * P + o]`) followed by the per-input-VC grant
//! vector (`vc_grants[i * V + v]`) — and, for the speculative wrappers, the
//! same two buses again for the (masked) speculative allocator.
//!
//! All three architectures are bit-exact with the behavioural models in
//! `noc_core::switch` over the representable request domain (each input VC
//! requests at most one output per cycle, which is all a router can
//! generate), including priority-state evolution: arbiters whose grants can
//! be vetoed downstream only commit on consumed grants, mirroring the
//! models' update rules.

use crate::builders::arbiters::{build_arbiter, HwArbiterKind};
use crate::builders::wavefront::build_wavefront;
use crate::netlist::{NetId, Netlist};
use crate::synth::{SynthResult, Synthesizer};
use noc_core::{SpecMode, SwitchAllocatorKind};

/// An instantiated switch-allocator core.
struct SwAllocHw {
    /// Crossbar grants, `xbar[i * P + o]`.
    xbar: Vec<NetId>,
    /// Per-input-VC grants, `vc_grants[i * V + v]`.
    vc_grants: Vec<NetId>,
}

#[inline]
fn rq(reqs: &[NetId], ports: usize, vcs: usize, i: usize, v: usize, o: usize) -> NetId {
    reqs[(i * vcs + v) * ports + o]
}

/// Builds one switch-allocator core over `reqs` (layout as per the module
/// docs), wiring all priority-state commits.
fn build_switch_allocator(
    nl: &mut Netlist,
    kind: SwitchAllocatorKind,
    ports: usize,
    vcs: usize,
    reqs: &[NetId],
) -> SwAllocHw {
    assert_eq!(reqs.len(), ports * vcs * ports);
    match kind {
        SwitchAllocatorKind::SepIf(ak) => {
            let ak = HwArbiterKind::from(ak);
            // Stage 1: a V:1 arbiter per input port over "VC has any
            // request" bits picks the forwarded VC.
            let mut input_arbs = Vec::with_capacity(ports);
            let mut winners = Vec::with_capacity(ports);
            for i in 0..ports {
                let active: Vec<NetId> = (0..vcs)
                    .map(|v| {
                        let row: Vec<NetId> =
                            (0..ports).map(|o| rq(reqs, ports, vcs, i, v, o)).collect();
                        nl.or_tree(&row)
                    })
                    .collect();
                let arb = build_arbiter(nl, ak, &active);
                winners.push(arb.grants.clone());
                input_arbs.push(arb);
            }
            // Forwarded request of input i at output o: its winning VC
            // requests o.
            let fwd: Vec<Vec<NetId>> = (0..ports)
                .map(|o| {
                    (0..ports)
                        .map(|i| {
                            let terms: Vec<NetId> = (0..vcs)
                                .map(|v| {
                                    let r = rq(reqs, ports, vcs, i, v, o);
                                    nl.and2(winners[i][v], r)
                                })
                                .collect();
                            nl.or_tree(&terms)
                        })
                        .collect()
                })
                .collect();
            // Stage 2: a P:1 arbiter per output; its grants drive the
            // crossbar directly.
            let mut xbar = vec![nl.const0(); ports * ports];
            for (o, row) in fwd.iter().enumerate() {
                let arb = build_arbiter(nl, ak, row);
                for i in 0..ports {
                    xbar[i * ports + o] = arb.grants[i];
                }
                // Output grants are always consumed.
                arb.commit_own_grants(nl);
            }
            // Input i won somewhere iff any output granted it; its winning
            // VC is then granted, and only then does stage 1 commit.
            let mut vc_grants = vec![nl.const0(); ports * vcs];
            for (i, arb) in input_arbs.into_iter().enumerate() {
                let row: Vec<NetId> = (0..ports).map(|o| xbar[i * ports + o]).collect();
                let granted_in = nl.or_tree(&row);
                let committed: Vec<NetId> = (0..vcs)
                    .map(|v| nl.and2(winners[i][v], granted_in))
                    .collect();
                vc_grants[i * vcs..(i + 1) * vcs].copy_from_slice(&committed);
                arb.commit_with(nl, &committed);
            }
            SwAllocHw { xbar, vc_grants }
        }
        SwitchAllocatorKind::SepOf(ak) => {
            let ak = HwArbiterKind::from(ak);
            // Port-level request matrix: input i wants output o.
            let pr: Vec<Vec<NetId>> = (0..ports)
                .map(|i| {
                    (0..ports)
                        .map(|o| {
                            let col: Vec<NetId> =
                                (0..vcs).map(|v| rq(reqs, ports, vcs, i, v, o)).collect();
                            nl.or_tree(&col)
                        })
                        .collect()
                })
                .collect();
            // Stage 1: a P:1 arbiter per output over all requesting inputs.
            let mut output_arbs = Vec::with_capacity(ports);
            let mut s1 = Vec::with_capacity(ports);
            for o in 0..ports {
                let col: Vec<NetId> = (0..ports).map(|i| pr[i][o]).collect();
                let arb = build_arbiter(nl, ak, &col);
                s1.push(arb.grants.clone());
                output_arbs.push(arb);
            }
            // Stage 2: per input, a V:1 arbiter among VCs whose requested
            // output was granted to this input.
            let mut xbar = vec![nl.const0(); ports * ports];
            let mut vc_grants = vec![nl.const0(); ports * vcs];
            for i in 0..ports {
                let cand: Vec<NetId> = (0..vcs)
                    .map(|v| {
                        let terms: Vec<NetId> = (0..ports)
                            .map(|o| {
                                let r = rq(reqs, ports, vcs, i, v, o);
                                nl.and2(r, s1[o][i])
                            })
                            .collect();
                        nl.or_tree(&terms)
                    })
                    .collect();
                let arb = build_arbiter(nl, ak, &cand);
                for o in 0..ports {
                    let terms: Vec<NetId> = (0..vcs)
                        .map(|v| {
                            let r = rq(reqs, ports, vcs, i, v, o);
                            nl.and2(arb.grants[v], r)
                        })
                        .collect();
                    xbar[i * ports + o] = nl.or_tree(&terms);
                }
                vc_grants[i * vcs..(i + 1) * vcs].copy_from_slice(&arb.grants);
                arb.commit_own_grants(nl);
            }
            // Stage-1 arbiters only advance when their grant was consumed —
            // i.e. when the granted input's VC winner actually targets this
            // output, which is exactly the crossbar column.
            for (o, arb) in output_arbs.into_iter().enumerate() {
                let col: Vec<NetId> = (0..ports).map(|i| xbar[i * ports + o]).collect();
                arb.commit_with(nl, &col);
            }
            SwAllocHw { xbar, vc_grants }
        }
        SwitchAllocatorKind::Wavefront => {
            // Port-level request matrix feeds the P x P wavefront block.
            let mut pr = Vec::with_capacity(ports * ports);
            for i in 0..ports {
                for o in 0..ports {
                    let col: Vec<NetId> = (0..vcs).map(|v| rq(reqs, ports, vcs, i, v, o)).collect();
                    pr.push(nl.or_tree(&col));
                }
            }
            let wf = build_wavefront(nl, &pr, ports);
            // V:1 round-robin pre-selection per (input, output) pair, in
            // parallel with the wavefront; committed only if the pair wins.
            let mut vc_grants = vec![nl.const0(); ports * vcs];
            let mut acc: Vec<Vec<NetId>> = vec![Vec::new(); ports * vcs];
            for i in 0..ports {
                for o in 0..ports {
                    let row: Vec<NetId> = (0..vcs).map(|v| rq(reqs, ports, vcs, i, v, o)).collect();
                    let arb = build_arbiter(nl, HwArbiterKind::RoundRobin, &row);
                    let pg = wf.grants[i * ports + o];
                    let committed: Vec<NetId> =
                        arb.grants.iter().map(|&g| nl.and2(pg, g)).collect();
                    for v in 0..vcs {
                        acc[i * vcs + v].push(committed[v]);
                    }
                    arb.commit_with(nl, &committed);
                }
            }
            for (slot, terms) in acc.into_iter().enumerate() {
                vc_grants[slot] = nl.or_tree(&terms);
            }
            SwAllocHw {
                xbar: wf.grants,
                vc_grants,
            }
        }
    }
}

fn arch_tag(kind: SwitchAllocatorKind) -> String {
    kind.label().replace('/', "_")
}

/// A non-speculative switch-allocator netlist (Figure 8): `P*V*P` request
/// inputs, then `P*P` crossbar outputs followed by `P*V` VC-grant outputs.
pub fn switch_allocator_netlist(kind: SwitchAllocatorKind, ports: usize, vcs: usize) -> Netlist {
    let mut nl = Netlist::new(format!("swa_{}_p{}v{}", arch_tag(kind), ports, vcs));
    let reqs = nl.inputs_vec(ports * vcs * ports);
    let core = build_switch_allocator(&mut nl, kind, ports, vcs, &reqs);
    for &x in &core.xbar {
        nl.output(x);
    }
    for &g in &core.vc_grants {
        nl.output(g);
    }
    nl
}

/// A speculative switch-allocator netlist (Figure 9): a non-speculative
/// request bank then a speculative one on the inputs; the non-speculative
/// crossbar/VC-grant buses then the masked speculative ones on the outputs.
/// `SpecMode::NonSpeculative` degenerates to [`switch_allocator_netlist`]
/// with only the first input bank used.
pub fn speculative_switch_allocator_netlist(
    kind: SwitchAllocatorKind,
    ports: usize,
    vcs: usize,
    mode: SpecMode,
) -> Netlist {
    if mode == SpecMode::NonSpeculative {
        let mut nl = switch_allocator_netlist(kind, ports, vcs);
        nl.name = format!("swa_{}_{}_p{}v{}", arch_tag(kind), mode.label(), ports, vcs);
        return nl;
    }
    let mut nl = Netlist::new(format!(
        "swa_{}_{}_p{}v{}",
        arch_tag(kind),
        mode.label(),
        ports,
        vcs
    ));
    let ns_reqs = nl.inputs_vec(ports * vcs * ports);
    let sp_reqs = nl.inputs_vec(ports * vcs * ports);
    let ns = build_switch_allocator(&mut nl, kind, ports, vcs, &ns_reqs);
    let sp = build_switch_allocator(&mut nl, kind, ports, vcs, &sp_reqs);
    // Masking stage (Figure 9). Conventional masks on non-speculative
    // *grants* — reduction trees over the allocator outputs, lengthening
    // the path. Pessimistic masks on non-speculative *requests* — computed
    // in parallel with allocation, leaving one AND on the path.
    let (in_free, out_free): (Vec<NetId>, Vec<NetId>) = match mode {
        SpecMode::Conventional => {
            let in_free = (0..ports)
                .map(|i| {
                    let row: Vec<NetId> = (0..ports).map(|o| ns.xbar[i * ports + o]).collect();
                    let used = nl.or_tree(&row);
                    nl.not(used)
                })
                .collect();
            let out_free = (0..ports)
                .map(|o| {
                    let col: Vec<NetId> = (0..ports).map(|i| ns.xbar[i * ports + o]).collect();
                    let used = nl.or_tree(&col);
                    nl.not(used)
                })
                .collect();
            (in_free, out_free)
        }
        SpecMode::Pessimistic => {
            let in_free = (0..ports)
                .map(|i| {
                    let active = nl.or_tree(&ns_reqs[i * vcs * ports..(i + 1) * vcs * ports]);
                    nl.not(active)
                })
                .collect();
            let out_free = (0..ports)
                .map(|o| {
                    let col: Vec<NetId> = (0..ports)
                        .flat_map(|i| (0..vcs).map(move |v| (i, v)))
                        .map(|(i, v)| rq(&ns_reqs, ports, vcs, i, v, o))
                        .collect();
                    let wanted = nl.or_tree(&col);
                    nl.not(wanted)
                })
                .collect();
            (in_free, out_free)
        }
        SpecMode::NonSpeculative => unreachable!(),
    };
    let ok: Vec<NetId> = (0..ports * ports)
        .map(|idx| nl.and2(in_free[idx / ports], out_free[idx % ports]))
        .collect();
    let masked_xbar: Vec<NetId> = (0..ports * ports)
        .map(|idx| nl.and2(sp.xbar[idx], ok[idx]))
        .collect();
    let masked_vc: Vec<NetId> = (0..ports)
        .flat_map(|i| (0..vcs).map(move |v| (i, v)))
        .map(|(i, v)| {
            let row: Vec<NetId> = (0..ports).map(|o| masked_xbar[i * ports + o]).collect();
            let survived = nl.or_tree(&row);
            nl.and2(sp.vc_grants[i * vcs + v], survived)
        })
        .collect();
    for &x in &ns.xbar {
        nl.output(x);
    }
    for &g in &ns.vc_grants {
        nl.output(g);
    }
    for &x in &masked_xbar {
        nl.output(x);
    }
    for &g in &masked_vc {
        nl.output(g);
    }
    nl
}

/// Synthesizes a (possibly speculative) switch allocator design point.
pub fn synthesize_switch_allocator(
    synth: &Synthesizer,
    kind: SwitchAllocatorKind,
    ports: usize,
    vcs: usize,
    mode: SpecMode,
) -> Result<SynthResult, crate::synth::SynthError> {
    synth.run(speculative_switch_allocator_netlist(kind, ports, vcs, mode))
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_arbiter::ArbiterKind;

    #[test]
    fn netlists_validate_and_have_expected_io() {
        for kind in [
            SwitchAllocatorKind::SepIf(ArbiterKind::RoundRobin),
            SwitchAllocatorKind::SepIf(ArbiterKind::Matrix),
            SwitchAllocatorKind::SepOf(ArbiterKind::RoundRobin),
            SwitchAllocatorKind::SepOf(ArbiterKind::Matrix),
            SwitchAllocatorKind::Wavefront,
        ] {
            let (p, v) = (5, 2);
            let nl = switch_allocator_netlist(kind, p, v);
            nl.validate().unwrap();
            assert_eq!(nl.primary_inputs().len(), p * v * p);
            assert_eq!(nl.primary_outputs().len(), p * p + p * v);
        }
    }

    #[test]
    fn speculative_netlists_validate_with_doubled_io() {
        for mode in [SpecMode::Conventional, SpecMode::Pessimistic] {
            let (p, v) = (5, 2);
            let nl = speculative_switch_allocator_netlist(
                SwitchAllocatorKind::SepIf(ArbiterKind::RoundRobin),
                p,
                v,
                mode,
            );
            nl.validate().unwrap();
            assert_eq!(nl.primary_inputs().len(), 2 * p * v * p);
            assert_eq!(nl.primary_outputs().len(), 2 * (p * p + p * v));
            assert!(nl.name.contains(mode.label()));
        }
    }

    #[test]
    fn masked_spec_grants_never_conflict_with_nonspec_ports() {
        // Structural property of the masking stage, checked by simulation
        // on random inputs for both modes.
        let (p, v) = (4, 2);
        for mode in [SpecMode::Conventional, SpecMode::Pessimistic] {
            let nl = speculative_switch_allocator_netlist(
                SwitchAllocatorKind::SepIf(ArbiterKind::RoundRobin),
                p,
                v,
                mode,
            );
            let mut state = vec![false; nl.dffs().len()];
            let mut x = 0x91u64;
            for _ in 0..100 {
                let inputs: Vec<bool> = (0..2 * p * v * p)
                    .map(|_| {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(7);
                        (x >> 45) & 7 == 0
                    })
                    .collect();
                let (outs, next) = nl.eval(&inputs, &state);
                state = next;
                let ns_xbar = &outs[..p * p];
                let sp_xbar = &outs[p * p + p * v..p * p + p * v + p * p];
                for i in 0..p {
                    for o in 0..p {
                        if sp_xbar[i * p + o] {
                            for oo in 0..p {
                                assert!(!ns_xbar[i * p + oo], "{mode:?}: input {i} double-used");
                            }
                            for ii in 0..p {
                                assert!(!ns_xbar[ii * p + o], "{mode:?}: output {o} double-used");
                            }
                        }
                    }
                }
            }
        }
    }
}
