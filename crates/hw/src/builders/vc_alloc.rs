//! VC-allocator netlists (§4, Figure 3): dense vs sparse.
//!
//! Inputs, per input VC `g` (global index `p * V + v`, port-major): a
//! `P`-bit one-hot of the output port chosen by routing, then a `V`-bit
//! candidate mask over output VCs at that port (class-granular, as §4.2
//! requires). Outputs: per input VC, a `V`-bit one-hot of the granted
//! output VC.
//!
//! The **dense** implementation ignores the static structure of the VC
//! partition: every input VC gets a full `V`-candidate arbiter and every
//! output VC a full `P × V` requester tree (P leaf arbiters of width V
//! under a width-P root), so illegal transitions are pruned only at
//! runtime by the candidate mask. The **sparse** implementation exploits
//! §4.2's restrictions — message class never changes, resource classes
//! follow the `rc_succ` relation — splitting the allocator into `M`
//! independent per-message-class blocks and statically deleting every
//! arbiter port that a legal request can never drive. The paper's area /
//! delay / power savings for sparse VC allocation fall out of exactly
//! this pruning.
//!
//! These netlists feed the synthesis cost model; bit-exact equivalence
//! against the behavioural `noc-core` allocators is checked for the
//! arbiter and wavefront building blocks they are assembled from.

use crate::builders::arbiters::{build_arbiter, HwArbiter, HwArbiterKind};
use crate::builders::wavefront::build_wavefront;
use crate::netlist::{NetId, Netlist};
use crate::synth::{SynthError, SynthResult, Synthesizer};
use noc_core::{AllocatorKind, VcAllocSpec};

/// One independent allocation block: which input VCs compete for which
/// output-VC columns. Dense = one block over everything; sparse = one
/// block per message class.
struct Block {
    /// Global input-VC indices (`p * V + v`) participating.
    gs: Vec<usize>,
    /// Output-VC indices (within `0..V`) allocated by this block.
    ovs: Vec<usize>,
}

fn blocks(spec: &VcAllocSpec, sparse: bool) -> Vec<Block> {
    let p = spec.ports();
    let v = spec.total_vcs();
    if !sparse {
        return vec![Block {
            gs: (0..p * v).collect(),
            ovs: (0..v).collect(),
        }];
    }
    (0..spec.msg_classes())
        .map(|m| Block {
            gs: (0..p * v)
                .filter(|&g| spec.vc_class(g % v).0 == m)
                .collect(),
            ovs: (0..v).filter(|&ov| spec.vc_class(ov).0 == m).collect(),
        })
        .collect()
}

/// Candidate positions (indices into `block.ovs`) an input VC can legally
/// request. Dense blocks keep every position; sparse blocks prune by the
/// resource-class transition relation.
fn cand_positions(spec: &VcAllocSpec, sparse: bool, in_vc: usize, ovs: &[usize]) -> Vec<usize> {
    if !sparse {
        return (0..ovs.len()).collect();
    }
    let (_, ir, _) = spec.vc_class(in_vc);
    (0..ovs.len())
        .filter(|&k| spec.rc_legal(ir, spec.vc_class(ovs[k]).1))
        .collect()
}

/// Precomputed input buses: `port[g]` is the P-bit one-hot output port,
/// `cand[g]` the V-bit candidate mask.
struct InputBuses {
    port: Vec<Vec<NetId>>,
    cand: Vec<Vec<NetId>>,
}

/// A `P:1`-over-`V:1` tree arbiter for one output VC (Figure 3's
/// per-output arbiter): leaf arbiters per input port, a root across
/// ports. `grants[pin][k]` is the final (leaf AND root) grant for member
/// `k` of leaf `pin`.
struct HwTreeArbiter {
    leaves: Vec<HwArbiter>,
    root: HwArbiter,
    grants: Vec<Vec<NetId>>,
}

/// Tree membership: for each leaf (input port), the `(gi, local)`
/// candidate pairs feeding it.
type TreeMembers = Vec<Vec<(usize, usize)>>;

fn build_tree_arbiter(
    nl: &mut Netlist,
    kind: HwArbiterKind,
    groups: &[Vec<NetId>],
) -> HwTreeArbiter {
    let mut leaves = Vec::with_capacity(groups.len());
    let mut any = Vec::with_capacity(groups.len());
    for grp in groups {
        // A statically request-free leaf still occupies a (constant) root
        // port so indices stay aligned; it can never win.
        let bids = if grp.is_empty() {
            vec![nl.const0()]
        } else {
            grp.clone()
        };
        any.push(nl.or_tree(&bids));
        leaves.push(build_arbiter(nl, kind, &bids));
    }
    let root = build_arbiter(nl, kind, &any);
    let root_grants = root.grants.clone();
    let grants = leaves
        .iter()
        .zip(&root_grants)
        .map(|(leaf, &rg)| {
            leaf.grants
                .iter()
                .map(|&lg| nl.and2(lg, rg))
                .collect::<Vec<NetId>>()
        })
        .collect();
    HwTreeArbiter {
        leaves,
        root,
        grants,
    }
}

impl HwTreeArbiter {
    /// Commits every level: leaves with the given consumed winners, the
    /// root with their per-leaf reduction.
    fn commit_with(self, nl: &mut Netlist, winners: &[Vec<NetId>]) {
        assert_eq!(winners.len(), self.leaves.len());
        let root_winner: Vec<NetId> = winners.iter().map(|w| nl.or_tree(w)).collect();
        for (leaf, winner) in self.leaves.into_iter().zip(winners) {
            // Empty groups were padded with a single constant bid.
            if winner.is_empty() {
                let z = nl.const0();
                leaf.commit_with(nl, &[z]);
            } else {
                leaf.commit_with(nl, winner);
            }
        }
        self.root.commit_with(nl, &root_winner);
    }

    /// Commits every level with the tree's own final grants (all grants
    /// consumed).
    fn commit(self, nl: &mut Netlist) {
        let winners = self.grants.clone();
        self.commit_with(nl, &winners);
    }
}

/// Builds a dense or sparse VC-allocator netlist for one design point.
pub fn vc_allocator_netlist(spec: &VcAllocSpec, kind: AllocatorKind, sparse: bool) -> Netlist {
    let p = spec.ports();
    let v = spec.total_vcs();
    let mut nl = Netlist::new(format!(
        "vca_{}_{}_{}_p{}",
        spec.label(),
        kind.label().replace('/', "_"),
        if sparse { "sparse" } else { "dense" },
        p
    ));
    let mut buses = InputBuses {
        port: Vec::with_capacity(p * v),
        cand: Vec::with_capacity(p * v),
    };
    for _ in 0..p * v {
        buses.port.push(nl.inputs_vec(p));
        buses.cand.push(nl.inputs_vec(v));
    }
    // Grant terms per (input VC, output VC) slot, OR-reduced at the end.
    let mut acc: Vec<Vec<NetId>> = vec![Vec::new(); p * v * v];

    for block in blocks(spec, sparse) {
        match kind {
            AllocatorKind::SepIfMatrix | AllocatorKind::SepIfRr => {
                build_separable_input_first(
                    &mut nl,
                    spec,
                    sparse,
                    sep_arbiter_kind(kind),
                    &block,
                    &buses,
                    &mut acc,
                );
            }
            AllocatorKind::SepOfMatrix | AllocatorKind::SepOfRr => {
                build_separable_output_first(
                    &mut nl,
                    spec,
                    sparse,
                    sep_arbiter_kind(kind),
                    &block,
                    &buses,
                    &mut acc,
                );
            }
            // MaxSize has no realistic hardware design point (§2.3); model
            // its cost with the wavefront structure so every kind can be
            // queried without panicking.
            AllocatorKind::Wavefront | AllocatorKind::MaxSize => {
                build_wavefront_block(&mut nl, spec, sparse, &block, &buses, &mut acc);
            }
        }
    }
    for terms in acc {
        let g = nl.or_tree(&terms);
        nl.output(g);
    }
    nl
}

fn sep_arbiter_kind(kind: AllocatorKind) -> HwArbiterKind {
    match kind {
        AllocatorKind::SepIfMatrix | AllocatorKind::SepOfMatrix => HwArbiterKind::Matrix,
        _ => HwArbiterKind::RoundRobin,
    }
}

/// Figure 3(a): each input VC first picks one candidate output VC, then
/// bids at that output VC's tree arbiter.
fn build_separable_input_first(
    nl: &mut Netlist,
    spec: &VcAllocSpec,
    sparse: bool,
    ak: HwArbiterKind,
    block: &Block,
    buses: &InputBuses,
    acc: &mut [Vec<NetId>],
) {
    let p = spec.ports();
    let v = spec.total_vcs();
    // Stage 1: per input VC, arbitrate among its (legal) candidates.
    let mut stage1: Vec<(HwArbiter, Vec<usize>)> = Vec::with_capacity(block.gs.len());
    for &g in &block.gs {
        let pos = cand_positions(spec, sparse, g % v, &block.ovs);
        let reqs: Vec<NetId> = pos.iter().map(|&k| buses.cand[g][block.ovs[k]]).collect();
        let arb = build_arbiter(nl, ak, &reqs);
        stage1.push((arb, pos));
    }
    // consumed[gi][local]: grants this stage-1 position collected across
    // all output VCs (used for the conditional stage-1 commit).
    let mut consumed: Vec<Vec<Vec<NetId>>> = stage1
        .iter()
        .map(|(a, _)| vec![Vec::new(); a.grants.len()])
        .collect();
    // Stage 2: one tree arbiter per output VC (o, ov).
    for (k, &ov) in block.ovs.iter().enumerate() {
        // Bidders: input VCs that can legally pick this ov, grouped by
        // their input port; a bid fires when stage 1 picked ov and the
        // packet's output port is o.
        let mut members: TreeMembers = vec![Vec::new(); p]; // (gi, local)
        for (gi, &g) in block.gs.iter().enumerate() {
            if let Some(local) = stage1[gi].1.iter().position(|&kk| kk == k) {
                members[g / v].push((gi, local));
            }
        }
        for o in 0..p {
            let groups: Vec<Vec<NetId>> = members
                .iter()
                .map(|ms| {
                    ms.iter()
                        .map(|&(gi, local)| {
                            let g = block.gs[gi];
                            let w = stage1[gi].0.grants[local];
                            nl.and2(w, buses.port[g][o])
                        })
                        .collect()
                })
                .collect();
            let tree = build_tree_arbiter(nl, ak, &groups);
            for (pin, ms) in members.iter().enumerate() {
                for (mk, &(gi, local)) in ms.iter().enumerate() {
                    let fg = tree.grants[pin][mk];
                    acc[block.gs[gi] * v + ov].push(fg);
                    consumed[gi][local].push(fg);
                }
            }
            tree.commit(nl);
        }
    }
    // Stage-1 arbiters advance only when the forwarded bid actually won.
    for ((arb, _), fgs) in stage1.into_iter().zip(consumed) {
        let winner: Vec<NetId> = fgs.into_iter().map(|terms| nl.or_tree(&terms)).collect();
        arb.commit_with(nl, &winner);
    }
}

/// Figure 3(b): every output VC arbitrates among all (legal) bidders
/// first; each input VC then picks one among the output VCs it won.
fn build_separable_output_first(
    nl: &mut Netlist,
    spec: &VcAllocSpec,
    sparse: bool,
    ak: HwArbiterKind,
    block: &Block,
    buses: &InputBuses,
    acc: &mut [Vec<NetId>],
) {
    let p = spec.ports();
    let v = spec.total_vcs();
    let positions: Vec<Vec<usize>> = block
        .gs
        .iter()
        .map(|&g| cand_positions(spec, sparse, g % v, &block.ovs))
        .collect();
    // Stage 1: a tree arbiter per output VC (o, ov) over all legal bids.
    // won[gi][local] accumulates stage-1 grants per candidate position.
    let mut won: Vec<Vec<Vec<NetId>>> = positions
        .iter()
        .map(|pos| vec![Vec::new(); pos.len()])
        .collect();
    let mut trees: Vec<(HwTreeArbiter, TreeMembers)> = Vec::new();
    for (k, &ov) in block.ovs.iter().enumerate() {
        let mut members: TreeMembers = vec![Vec::new(); p];
        for (gi, &g) in block.gs.iter().enumerate() {
            if let Some(local) = positions[gi].iter().position(|&kk| kk == k) {
                members[g / v].push((gi, local));
            }
        }
        for o in 0..p {
            let groups: Vec<Vec<NetId>> = members
                .iter()
                .map(|ms| {
                    ms.iter()
                        .map(|&(gi, _)| {
                            let g = block.gs[gi];
                            nl.and2(buses.cand[g][ov], buses.port[g][o])
                        })
                        .collect()
                })
                .collect();
            let tree = build_tree_arbiter(nl, ak, &groups);
            for (pin, ms) in members.iter().enumerate() {
                for (mk, &(gi, local)) in ms.iter().enumerate() {
                    won[gi][local].push(tree.grants[pin][mk]);
                }
            }
            trees.push((tree, members.clone()));
        }
    }
    // Stage 2: per input VC, arbitrate among won output VCs; these grants
    // are final.
    let mut final_pos: Vec<Vec<NetId>> = Vec::with_capacity(block.gs.len());
    for (gi, &g) in block.gs.iter().enumerate() {
        let reqs: Vec<NetId> = won[gi].iter().map(|terms| nl.or_tree(terms)).collect();
        let arb = build_arbiter(nl, ak, &reqs);
        for (local, &k) in positions[gi].iter().enumerate() {
            acc[g * v + block.ovs[k]].push(arb.grants[local]);
        }
        final_pos.push(arb.grants.clone());
        arb.commit_own_grants(nl);
    }
    // Stage-1 trees advance only on consumed grants: their grant to gi was
    // consumed iff gi's stage-2 winner is the matching candidate.
    for (tree, members) in trees {
        let winners: Vec<Vec<NetId>> = members
            .iter()
            .enumerate()
            .map(|(pin, ms)| {
                ms.iter()
                    .enumerate()
                    .map(|(mk, &(gi, local))| {
                        let s1 = tree.grants[pin][mk];
                        nl.and2(s1, final_pos[gi][local])
                    })
                    .collect()
            })
            .collect();
        tree.commit_with(nl, &winners);
    }
}

/// Figure 3(c)-style monolithic block: a square wavefront array over
/// (input VC) × (output port, output VC).
fn build_wavefront_block(
    nl: &mut Netlist,
    spec: &VcAllocSpec,
    sparse: bool,
    block: &Block,
    buses: &InputBuses,
    acc: &mut [Vec<NetId>],
) {
    let p = spec.ports();
    let v = spec.total_vcs();
    let sub = block.ovs.len();
    let rows = block.gs.len();
    let cols = p * sub;
    let n = rows.max(cols);
    let zero = nl.const0();
    let mut bids = vec![zero; n * n];
    for (gi, &g) in block.gs.iter().enumerate() {
        for &k in &cand_positions(spec, sparse, g % v, &block.ovs) {
            let ov = block.ovs[k];
            for o in 0..p {
                bids[gi * n + o * sub + k] = nl.and2(buses.cand[g][ov], buses.port[g][o]);
            }
        }
    }
    let wf = build_wavefront(nl, &bids, n);
    for (gi, &g) in block.gs.iter().enumerate() {
        for (k, &ov) in block.ovs.iter().enumerate() {
            let terms: Vec<NetId> = (0..p).map(|o| wf.grants[gi * n + o * sub + k]).collect();
            let any = nl.or_tree(&terms);
            acc[g * v + ov].push(any);
        }
    }
}

/// Synthesizes a VC-allocator design point.
pub fn synthesize_vc_allocator(
    synth: &Synthesizer,
    spec: &VcAllocSpec,
    kind: AllocatorKind,
    sparse: bool,
) -> Result<SynthResult, SynthError> {
    synth.run(vc_allocator_netlist(spec, kind, sparse))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn netlists_validate_with_expected_io() {
        let spec = VcAllocSpec::mesh(2);
        let (p, v) = (spec.ports(), spec.total_vcs());
        for kind in AllocatorKind::COST_FIGURE_KINDS {
            for sparse in [false, true] {
                let nl = vc_allocator_netlist(&spec, kind, sparse);
                nl.validate()
                    .unwrap_or_else(|e| panic!("{kind:?} sparse={sparse}: {e}"));
                assert_eq!(nl.primary_inputs().len(), p * v * (p + v));
                assert_eq!(nl.primary_outputs().len(), p * v * v);
            }
        }
    }

    #[test]
    fn sparse_is_structurally_smaller() {
        for spec in [VcAllocSpec::mesh(2), VcAllocSpec::fbfly(1)] {
            for kind in [AllocatorKind::SepIfRr, AllocatorKind::SepOfMatrix] {
                let dense = vc_allocator_netlist(&spec, kind, false);
                let sparse = vc_allocator_netlist(&spec, kind, true);
                assert!(
                    sparse.instance_count() < dense.instance_count(),
                    "{} {kind:?}: sparse {} !< dense {}",
                    spec.label(),
                    sparse.instance_count(),
                    dense.instance_count()
                );
            }
        }
    }

    #[test]
    fn grants_respect_candidates_and_are_one_hot_per_input_vc() {
        // Functional sanity on random inputs: at most one grant per input
        // VC, and grants only go to requested candidates.
        let spec = VcAllocSpec::mesh(1);
        let (p, v) = (spec.ports(), spec.total_vcs());
        for kind in AllocatorKind::COST_FIGURE_KINDS {
            for sparse in [false, true] {
                let nl = vc_allocator_netlist(&spec, kind, sparse);
                nl.validate().unwrap();
                let matrix_state = matches!(
                    kind,
                    AllocatorKind::SepIfMatrix | AllocatorKind::SepOfMatrix
                );
                let mut state = vec![matrix_state; nl.dffs().len()];
                let mut x = 0xabcdu64;
                for _ in 0..50 {
                    let mut inputs = vec![false; p * v * (p + v)];
                    for g in 0..p * v {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(12345);
                        if (x >> 60) & 3 == 0 {
                            continue; // idle VC
                        }
                        let out_port = (x >> 33) as usize % p;
                        inputs[g * (p + v) + out_port] = true;
                        for ov in 0..v {
                            x = x.wrapping_mul(6364136223846793005).wrapping_add(54321);
                            if (x >> 50) & 1 == 0 {
                                inputs[g * (p + v) + p + ov] = true;
                            }
                        }
                    }
                    let (outs, next) = nl.eval(&inputs, &state);
                    state = next;
                    for g in 0..p * v {
                        let row = &outs[g * v..(g + 1) * v];
                        let count = row.iter().filter(|&&b| b).count();
                        assert!(
                            count <= 1,
                            "{kind:?} sparse={sparse}: input VC {g} over-granted"
                        );
                        for ov in 0..v {
                            if row[ov] {
                                assert!(
                                    inputs[g * (p + v) + p + ov],
                                    "{kind:?} sparse={sparse}: grant without candidate"
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}
