//! The synthesis driver: ties netlist generation, optimization, timing and
//! power into one "Design Compiler run" per design point.

use crate::cell::CellLibrary;
use crate::netlist::Netlist;
use crate::{optimize, power, sta};

/// Outcome of synthesizing one design point — the three quantities the
/// paper's cost figures plot.
#[derive(Clone, Debug)]
pub struct SynthResult {
    /// Design name.
    pub name: String,
    /// Minimum cycle time in ns ("delay" axis of Figures 5/6/10/11).
    pub delay_ns: f64,
    /// Total cell area in µm² (Figures 5/10).
    pub area_um2: f64,
    /// Average power in mW at an input activity factor of 0.5, evaluated at
    /// the design's minimum cycle time (Figures 6/11).
    pub power_mw: f64,
    /// Combinational cell instances after optimization.
    pub cells: usize,
    /// Flip-flop instances.
    pub dffs: usize,
    /// Buffers inserted by the fanout pass.
    pub buffers_inserted: usize,
    /// Sizing iterations applied.
    pub sizing_iterations: usize,
}

/// Synthesis failure modes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SynthError {
    /// The design exceeds the tool's capacity — models the paper's repeated
    /// observation that "Design Compiler consistently ran out of memory"
    /// for the largest (mostly wavefront and matrix-arbiter) design points.
    OutOfMemory {
        /// Cell instances the design would need.
        cells: usize,
        /// The configured capacity.
        budget: usize,
    },
}

impl std::fmt::Display for SynthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SynthError::OutOfMemory { cells, budget } => write!(
                f,
                "synthesis out of memory: {cells} cell instances exceed capacity {budget}"
            ),
        }
    }
}

impl std::error::Error for SynthError {}

/// A configured synthesis flow.
///
/// ```
/// use noc_hw::builders::arbiters::{arbiter_netlist, HwArbiterKind};
/// use noc_hw::Synthesizer;
///
/// let synth = Synthesizer::default();
/// let report = synth.run(arbiter_netlist(HwArbiterKind::RoundRobin, 8)).unwrap();
/// assert!(report.delay_ns > 0.0 && report.area_um2 > 0.0);
/// ```
#[derive(Clone, Debug)]
pub struct Synthesizer {
    /// Cell library in use.
    pub lib: CellLibrary,
    /// Maximum cell instances the flow can handle before "running out of
    /// memory". The default is tuned so that the same design points fail
    /// as failed for the paper's authors (dense wavefront VC allocators
    /// beyond the small mesh configs; matrix-arbiter variants of the
    /// largest flattened-butterfly VC allocator).
    pub cell_budget: usize,
    /// Fanout cap for buffer insertion.
    pub max_fanout: usize,
    /// Iteration cap for critical-path sizing.
    pub sizing_iterations: usize,
    /// Input activity factor for the power report.
    pub activity_factor: f64,
}

impl Default for Synthesizer {
    fn default() -> Self {
        Synthesizer {
            lib: CellLibrary::default(),
            cell_budget: 300_000,
            max_fanout: optimize::DEFAULT_MAX_FANOUT,
            sizing_iterations: 40,
            activity_factor: power::PAPER_ACTIVITY_FACTOR,
        }
    }
}

impl Synthesizer {
    /// An unconstrained flow for tests (no OOM emulation).
    pub fn unlimited() -> Self {
        Synthesizer {
            cell_budget: usize::MAX,
            ..Synthesizer::default()
        }
    }

    /// Runs the flow on `netlist`: validate, check capacity, buffer
    /// fanout, size the critical path, then report timing/area/power.
    pub fn run(&self, mut netlist: Netlist) -> Result<SynthResult, SynthError> {
        netlist
            .validate()
            .unwrap_or_else(|e| panic!("invalid netlist: {e}"));
        if netlist.instance_count() > self.cell_budget {
            return Err(SynthError::OutOfMemory {
                cells: netlist.instance_count(),
                budget: self.cell_budget,
            });
        }
        let buffers_inserted = optimize::buffer_high_fanout(&mut netlist, self.max_fanout);
        if netlist.instance_count() > self.cell_budget {
            return Err(SynthError::OutOfMemory {
                cells: netlist.instance_count(),
                budget: self.cell_budget,
            });
        }
        let sizing_iterations =
            optimize::size_critical_path(&mut netlist, &self.lib, self.sizing_iterations);
        let timing = sta::analyze(&netlist, &self.lib);
        let freq_ghz = 1.0 / timing.min_cycle_ns;
        let pwr = power::analyze(&netlist, &self.lib, freq_ghz, self.activity_factor);
        Ok(SynthResult {
            name: netlist.name.clone(),
            delay_ns: timing.min_cycle_ns,
            area_um2: netlist.area_um2(&self.lib),
            power_mw: pwr.total_mw,
            cells: netlist.cells().len(),
            dffs: netlist.dffs().len(),
            buffers_inserted,
            sizing_iterations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wide_or(n: usize) -> Netlist {
        let mut nl = Netlist::new(format!("or{n}"));
        let ins = nl.inputs_vec(n);
        let o = nl.or_tree(&ins);
        nl.output(o);
        nl
    }

    #[test]
    fn synthesis_produces_positive_costs() {
        let s = Synthesizer::unlimited();
        let r = s.run(wide_or(64)).unwrap();
        assert!(r.delay_ns > 0.0 && r.area_um2 > 0.0 && r.power_mw > 0.0);
        assert!(r.cells >= 21); // 64-input OR4 tree
    }

    #[test]
    fn oom_emulation_trips_on_budget() {
        let s = Synthesizer {
            cell_budget: 10,
            ..Synthesizer::unlimited()
        };
        match s.run(wide_or(64)) {
            Err(SynthError::OutOfMemory { cells, budget }) => {
                assert!(cells > 10);
                assert_eq!(budget, 10);
            }
            other => panic!("expected OOM, got {other:?}"),
        }
    }

    #[test]
    fn bigger_designs_cost_more() {
        let s = Synthesizer::unlimited();
        let small = s.run(wide_or(8)).unwrap();
        let big = s.run(wide_or(128)).unwrap();
        assert!(big.area_um2 > small.area_um2);
        assert!(big.delay_ns > small.delay_ns);
        assert!(big.power_mw > small.power_mw);
    }

    #[test]
    fn optimization_beats_naive_timing() {
        // Same logic analyzed raw vs through the flow.
        let s = Synthesizer::unlimited();
        let mut raw = wide_or(64);
        // Heavy shared-input structure to give buffering something to do.
        let extra = {
            let mut nl = Netlist::new("shared");
            let a = nl.input();
            let b = nl.input();
            let x = nl.and2(a, b);
            for _ in 0..40 {
                let y = nl.not(x);
                nl.output(y);
            }
            nl
        };
        let raw_delay = sta::analyze(&extra, &s.lib).min_cycle_ns;
        let opt = s.run(extra).unwrap();
        assert!(opt.delay_ns <= raw_delay);
        let _ = &mut raw;
    }
}
