//! Structural netlist generators for the allocator design points.
//!
//! Each builder produces a [`crate::Netlist`] that is *bit-exact* with the
//! corresponding behavioural model in `noc-core`/`noc-arbiter` (checked by
//! unit tests here and the property tests in `tests/`): identical grant
//! outputs and identical priority-state evolution, cycle for cycle. The
//! netlists are what the synthesis flow ([`crate::Synthesizer`]) consumes to
//! reproduce the paper's area/delay/power figures.
//!
//! - [`arbiters`]: fixed-priority, round-robin and matrix arbiters (§2.1);
//! - [`wavefront`]: the wavefront tile array, replicated per diagonal as in
//!   the paper plus the area-efficient unrolled form of Hurt et al. (§2.2);
//! - [`sw_alloc`]: the three switch-allocator architectures of Figure 8 and
//!   their speculative wrappers of Figure 9 (§5);
//! - [`vc_alloc`]: dense and sparse VC allocators of Figure 3 (§4).

pub mod arbiters;
pub mod sw_alloc;
pub mod vc_alloc;
pub mod wavefront;
