//! Standard-cell primitives and the synthetic 45 nm low-power library.
//!
//! The paper synthesizes with "a commercial 45nm low-power standard cell
//! library under worst-case process, voltage and temperature conditions
//! (0.9V, 125°C)". We cannot ship a commercial library, so this module
//! defines a synthetic one with physically grounded parameters:
//!
//! * **Delay** follows the logical-effort model: a cell driving load `C_L`
//!   with drive size `s` has delay `τ·(p + C_L / (s·c0))`, where `p` is the
//!   cell's parasitic delay in units of `τ` and `c0` the unit inverter input
//!   capacitance. `τ` is calibrated so an FO4 inverter is ≈ 45 ps — a
//!   representative worst-case-PVT value for a 45 nm LP process.
//! * **Input capacitance** of a pin is `g·s·c0` with `g` the cell's logical
//!   effort per input.
//! * **Area** per cell grows affinely with drive size.
//! * **Power** is handled in [`crate::power`] from net capacitances and
//!   switching activities, plus per-cell leakage.
//!
//! Absolute numbers differ from any real foundry kit, but ratios between
//! designs — which is what the paper's conclusions rest on — are preserved
//! because they derive from logic structure (depth, width, fanout).

/// Combinational cell types available to the netlist builders.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CellKind {
    /// Inverter.
    Inv,
    /// Non-inverting buffer.
    Buf,
    /// 2-input NAND.
    Nand2,
    /// 3-input NAND.
    Nand3,
    /// 4-input NAND.
    Nand4,
    /// 2-input NOR.
    Nor2,
    /// 3-input NOR.
    Nor3,
    /// 4-input NOR.
    Nor4,
    /// 2-input AND.
    And2,
    /// 3-input AND.
    And3,
    /// 4-input AND.
    And4,
    /// 2-input OR.
    Or2,
    /// 3-input OR.
    Or3,
    /// 4-input OR.
    Or4,
    /// 2-input XOR.
    Xor2,
    /// 2-input XNOR.
    Xnor2,
    /// 2:1 multiplexer; inputs are `(a, b, sel)`, output `sel ? b : a`.
    Mux2,
    /// AND-OR-invert: `!((a & b) | c)`.
    Aoi21,
    /// OR-AND-invert: `!((a | b) & c)`.
    Oai21,
}

impl CellKind {
    /// Number of input pins.
    pub fn num_inputs(self) -> usize {
        use CellKind::*;
        match self {
            Inv | Buf => 1,
            Nand2 | Nor2 | And2 | Or2 | Xor2 | Xnor2 => 2,
            Nand3 | Nor3 | And3 | Or3 | Aoi21 | Oai21 | Mux2 => 3,
            Nand4 | Nor4 | And4 | Or4 => 4,
        }
    }

    /// Boolean function of the cell, for combinational netlist evaluation.
    pub fn eval(self, inputs: &[bool]) -> bool {
        use CellKind::*;
        match self {
            Inv => !inputs[0],
            Buf => inputs[0],
            Nand2 | Nand3 | Nand4 => !inputs.iter().all(|&b| b),
            Nor2 | Nor3 | Nor4 => !inputs.iter().any(|&b| b),
            And2 | And3 | And4 => inputs.iter().all(|&b| b),
            Or2 | Or3 | Or4 => inputs.iter().any(|&b| b),
            Xor2 => inputs[0] ^ inputs[1],
            Xnor2 => !(inputs[0] ^ inputs[1]),
            Mux2 => {
                if inputs[2] {
                    inputs[1]
                } else {
                    inputs[0]
                }
            }
            Aoi21 => !((inputs[0] && inputs[1]) || inputs[2]),
            Oai21 => !((inputs[0] || inputs[1]) && inputs[2]),
        }
    }

    /// Output signal probability assuming independent inputs with the given
    /// one-probabilities (used by the power model's activity propagation).
    pub fn output_probability(self, p: &[f64]) -> f64 {
        use CellKind::*;
        match self {
            Inv => 1.0 - p[0],
            Buf => p[0],
            Nand2 | Nand3 | Nand4 => 1.0 - p.iter().product::<f64>(),
            Nor2 | Nor3 | Nor4 => p.iter().map(|q| 1.0 - q).product(),
            And2 | And3 | And4 => p.iter().product(),
            Or2 | Or3 | Or4 => 1.0 - p.iter().map(|q| 1.0 - q).product::<f64>(),
            Xor2 => p[0] * (1.0 - p[1]) + p[1] * (1.0 - p[0]),
            Xnor2 => p[0] * p[1] + (1.0 - p[0]) * (1.0 - p[1]),
            Mux2 => p[2] * p[1] + (1.0 - p[2]) * p[0],
            Aoi21 => 1.0 - (p[0] * p[1] + p[2] - p[0] * p[1] * p[2]),
            Oai21 => 1.0 - (p[0] + p[1] - p[0] * p[1]) * p[2],
        }
    }

    /// All cell kinds, for exhaustive tests.
    pub const ALL: [CellKind; 19] = [
        CellKind::Inv,
        CellKind::Buf,
        CellKind::Nand2,
        CellKind::Nand3,
        CellKind::Nand4,
        CellKind::Nor2,
        CellKind::Nor3,
        CellKind::Nor4,
        CellKind::And2,
        CellKind::And3,
        CellKind::And4,
        CellKind::Or2,
        CellKind::Or3,
        CellKind::Or4,
        CellKind::Xor2,
        CellKind::Xnor2,
        CellKind::Mux2,
        CellKind::Aoi21,
        CellKind::Oai21,
    ];
}

/// Electrical and physical parameters of one library cell.
#[derive(Clone, Copy, Debug)]
pub struct CellParams {
    /// Logical effort per input (delay penalty relative to an inverter for
    /// equal drive).
    pub logical_effort: f64,
    /// Parasitic delay in units of τ.
    pub parasitic: f64,
    /// Cell area in µm² at unit drive.
    pub area: f64,
    /// Leakage power in nW at unit drive (LP process, worst-case temp).
    pub leakage_nw: f64,
    /// Internal energy factor: fraction of the switched load charged inside
    /// the cell (short-circuit + internal nodes).
    pub internal_energy: f64,
}

/// The synthetic 45 nm LP library.
#[derive(Clone, Debug)]
pub struct CellLibrary {
    /// Time unit τ in ns (inverter delay driving one identical inverter,
    /// minus parasitic).
    pub tau_ns: f64,
    /// Unit inverter input capacitance in fF.
    pub c0_ff: f64,
    /// Supply voltage in V.
    pub vdd: f64,
    /// Wire capacitance added to a net per fanout pin, in fF.
    pub wire_cap_per_fanout_ff: f64,
    /// D flip-flop parameters.
    pub dff: DffParams,
}

/// Sequential-cell parameters.
#[derive(Clone, Copy, Debug)]
pub struct DffParams {
    /// Clock-to-Q delay in ns.
    pub clk_q_ns: f64,
    /// Setup time in ns.
    pub setup_ns: f64,
    /// D-pin input capacitance in fF.
    pub d_cap_ff: f64,
    /// Area in µm².
    pub area: f64,
    /// Leakage in nW.
    pub leakage_nw: f64,
    /// Clock-pin capacitance in fF (contributes clock-tree power).
    pub clk_cap_ff: f64,
}

impl Default for CellLibrary {
    fn default() -> Self {
        CellLibrary {
            // FO4 ≈ τ·(p + 4) with p = 1 → 45 ps at τ = 9 ps: typical for
            // 45 nm LP silicon at 0.9 V / 125 °C worst case.
            tau_ns: 0.009,
            c0_ff: 0.9,
            vdd: 0.9,
            wire_cap_per_fanout_ff: 0.25,
            dff: DffParams {
                clk_q_ns: 0.075,
                setup_ns: 0.035,
                d_cap_ff: 1.4,
                area: 5.8,
                leakage_nw: 2.4,
                clk_cap_ff: 0.9,
            },
        }
    }
}

impl CellLibrary {
    /// Parameters of one combinational cell kind.
    pub fn params(&self, kind: CellKind) -> CellParams {
        use CellKind::*;
        // Logical efforts/parasitics from Sutherland-Sproull-Harris; CMOS
        // composite gates (AND/OR) modeled as NAND/NOR + inverter merged.
        let (g, p, area, leak) = match kind {
            Inv => (1.0, 1.0, 1.1, 0.5),
            Buf => (1.0, 2.0, 1.6, 0.7),
            Nand2 => (4.0 / 3.0, 2.0, 1.6, 0.8),
            Nand3 => (5.0 / 3.0, 3.0, 2.2, 1.1),
            Nand4 => (2.0, 4.0, 2.8, 1.4),
            Nor2 => (5.0 / 3.0, 2.0, 1.6, 0.8),
            Nor3 => (7.0 / 3.0, 3.0, 2.2, 1.1),
            Nor4 => (3.0, 4.0, 2.8, 1.4),
            And2 => (4.0 / 3.0, 3.0, 2.1, 1.0),
            And3 => (5.0 / 3.0, 4.0, 2.7, 1.3),
            And4 => (2.0, 5.0, 3.3, 1.6),
            Or2 => (5.0 / 3.0, 3.0, 2.1, 1.0),
            Or3 => (7.0 / 3.0, 4.0, 2.7, 1.3),
            Or4 => (3.0, 5.0, 3.3, 1.6),
            Xor2 => (4.0, 4.0, 3.4, 1.8),
            Xnor2 => (4.0, 4.0, 3.4, 1.8),
            Mux2 => (2.0, 4.0, 3.2, 1.5),
            Aoi21 => (5.0 / 3.0, 7.0 / 3.0, 2.2, 1.0),
            Oai21 => (5.0 / 3.0, 7.0 / 3.0, 2.2, 1.0),
        };
        CellParams {
            logical_effort: g,
            parasitic: p,
            area,
            leakage_nw: leak,
            internal_energy: 0.35,
        }
    }

    /// Input-pin capacitance of a cell at drive size `size`, in fF.
    pub fn input_cap_ff(&self, kind: CellKind, size: f64) -> f64 {
        self.params(kind).logical_effort * size * self.c0_ff
    }

    /// Cell delay in ns for drive `size` and output load `load_ff`.
    pub fn cell_delay_ns(&self, kind: CellKind, size: f64, load_ff: f64) -> f64 {
        let p = self.params(kind);
        self.tau_ns * (p.parasitic + load_ff / (size * self.c0_ff))
    }

    /// Cell area in µm² at drive `size`; upsizing widens transistors but
    /// shares overhead, hence the affine model.
    pub fn cell_area_um2(&self, kind: CellKind, size: f64) -> f64 {
        self.params(kind).area * (0.45 + 0.55 * size)
    }

    /// FO4 delay of the library in ns (sanity anchor).
    pub fn fo4_ns(&self) -> f64 {
        self.cell_delay_ns(CellKind::Inv, 1.0, 4.0 * self.c0_ff)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fo4_is_realistic_for_45nm_lp_worst_case() {
        let lib = CellLibrary::default();
        let fo4 = lib.fo4_ns();
        assert!((0.03..0.06).contains(&fo4), "FO4 = {fo4} ns");
    }

    #[test]
    fn eval_truth_tables() {
        use CellKind::*;
        assert!(Nand2.eval(&[true, false]));
        assert!(!Nand2.eval(&[true, true]));
        assert!(!Nor2.eval(&[true, false]));
        assert!(Nor2.eval(&[false, false]));
        assert!(Mux2.eval(&[false, true, true]));
        assert!(!Mux2.eval(&[false, true, false]));
        assert!(Aoi21.eval(&[true, false, false]));
        assert!(!Aoi21.eval(&[true, true, false]));
        assert!(!Aoi21.eval(&[false, false, true]));
        assert!(Oai21.eval(&[false, false, true]));
        assert!(!Oai21.eval(&[true, false, true]));
    }

    #[test]
    fn probability_matches_exhaustive_truth_table() {
        // For p = 0.5 per input, output probability must equal the fraction
        // of input combinations producing 1.
        for kind in CellKind::ALL {
            let n = kind.num_inputs();
            let mut ones = 0usize;
            for bits in 0..(1u32 << n) {
                let inputs: Vec<bool> = (0..n).map(|i| bits >> i & 1 != 0).collect();
                if kind.eval(&inputs) {
                    ones += 1;
                }
            }
            let expected = ones as f64 / (1 << n) as f64;
            let got = kind.output_probability(&vec![0.5; n]);
            assert!(
                (got - expected).abs() < 1e-9,
                "{kind:?}: formula {got} vs truth table {expected}"
            );
        }
    }

    #[test]
    fn probability_formulas_at_corners() {
        // At deterministic inputs the probability must match eval exactly.
        for kind in CellKind::ALL {
            let n = kind.num_inputs();
            for bits in 0..(1u32 << n) {
                let inputs: Vec<bool> = (0..n).map(|i| bits >> i & 1 != 0).collect();
                let probs: Vec<f64> = inputs.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect();
                let want = if kind.eval(&inputs) { 1.0 } else { 0.0 };
                let got = kind.output_probability(&probs);
                assert!(
                    (got - want).abs() < 1e-9,
                    "{kind:?} inputs {inputs:?}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn delay_decreases_with_size_increases_with_load() {
        let lib = CellLibrary::default();
        let d_small = lib.cell_delay_ns(CellKind::Nand2, 1.0, 10.0);
        let d_big = lib.cell_delay_ns(CellKind::Nand2, 4.0, 10.0);
        assert!(d_big < d_small);
        let d_loaded = lib.cell_delay_ns(CellKind::Nand2, 1.0, 20.0);
        assert!(d_loaded > d_small);
    }

    #[test]
    fn area_grows_with_size() {
        let lib = CellLibrary::default();
        assert!(lib.cell_area_um2(CellKind::Nand2, 4.0) > lib.cell_area_um2(CellKind::Nand2, 1.0));
        // Quadrupling drive should not quadruple area (shared overhead).
        assert!(
            lib.cell_area_um2(CellKind::Nand2, 4.0) < 4.0 * lib.cell_area_um2(CellKind::Nand2, 1.0)
        );
    }
}
