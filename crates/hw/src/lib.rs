#![forbid(unsafe_code)]
//! Hardware cost model: the workspace's stand-in for RTL synthesis.
//!
//! The paper evaluates allocator implementations by synthesizing Verilog
//! RTL with Synopsys Design Compiler against a commercial 45 nm low-power
//! library (§3.1). This crate substitutes that flow with a self-contained
//! gate-level pipeline:
//!
//! 1. [`builders`] generate structural netlists for every design point the
//!    paper evaluates — arbiters, dense/sparse VC allocators (Figure 3),
//!    switch allocators (Figure 8) and speculative wrappers (Figure 9) —
//!    using the same microarchitectures as the behavioural models in
//!    `noc-core` (equivalence is tested gate-for-gate);
//! 2. [`optimize`] mimics "compile for minimum cycle time" via fanout
//!    buffering and critical-path gate upsizing;
//! 3. [`sta`] reports the minimum cycle time (logical-effort delay model),
//!    [`power`] the average power at activity factor 0.5 (§3.1), and
//!    [`netlist::Netlist::area_um2`] the cell area;
//! 4. [`synth::Synthesizer`] drives the flow and emulates Design Compiler's
//!    capacity limits — the paper's repeated "ran out of memory" failures
//!    on large wavefront/matrix design points reappear here as
//!    [`synth::SynthError::OutOfMemory`].
//!
//! Absolute delays/areas/powers are those of a synthetic library; the
//! figures of merit the paper's conclusions rest on — *ratios* between
//! allocator architectures and the *savings* from sparse VC allocation and
//! pessimistic speculation — derive from logic structure and carry over.

pub mod builders;
pub mod cell;
pub mod netlist;
pub mod optimize;
pub mod power;
pub mod sta;
pub mod synth;
pub mod verilog;

pub use cell::{CellKind, CellLibrary};
pub use netlist::{NetId, Netlist};
pub use synth::{SynthError, SynthResult, Synthesizer};
pub use verilog::{to_verilog, VerilogOptions};
