//! Gate-level netlist IR and construction helpers.

use crate::cell::{CellKind, CellLibrary};

/// Identifier of a net (wire) in a [`Netlist`].
pub type NetId = usize;

/// One combinational cell instance.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Library cell type.
    pub kind: CellKind,
    /// Input nets, in pin order.
    pub inputs: Vec<NetId>,
    /// Output net (every cell drives exactly one net).
    pub output: NetId,
    /// Drive strength multiplier (set by the sizing pass; 1.0 = unit drive).
    pub size: f64,
}

/// One D flip-flop instance.
#[derive(Clone, Copy, Debug)]
pub struct Dff {
    /// Data input net.
    pub d: NetId,
    /// Output net.
    pub q: NetId,
}

/// A flat gate-level netlist.
///
/// Nets are created implicitly by the builder methods; every net is driven
/// by exactly one of: a primary input, a constant tie, a DFF output, or a
/// cell output. The struct doubles as its own builder — netlists are
/// constructed by the generator functions in [`crate::builders`] and then
/// analyzed by [`crate::sta`], [`crate::power`] and [`crate::optimize`].
#[derive(Clone, Debug)]
pub struct Netlist {
    /// Human-readable design name (appears in synthesis reports).
    pub name: String,
    num_nets: usize,
    cells: Vec<Cell>,
    dffs: Vec<Dff>,
    inputs: Vec<NetId>,
    outputs: Vec<NetId>,
    const0: Option<NetId>,
    const1: Option<NetId>,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            num_nets: 0,
            cells: Vec::new(),
            dffs: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            const0: None,
            const1: None,
        }
    }

    fn fresh_net(&mut self) -> NetId {
        let id = self.num_nets;
        self.num_nets += 1;
        id
    }

    /// Declares a new primary input and returns its net.
    pub fn input(&mut self) -> NetId {
        let n = self.fresh_net();
        self.inputs.push(n);
        n
    }

    /// Declares `k` primary inputs.
    pub fn inputs_vec(&mut self, k: usize) -> Vec<NetId> {
        (0..k).map(|_| self.input()).collect()
    }

    /// Marks `net` as a primary output.
    pub fn output(&mut self, net: NetId) {
        self.outputs.push(net);
    }

    /// The constant-0 net (created on first use).
    pub fn const0(&mut self) -> NetId {
        if let Some(n) = self.const0 {
            n
        } else {
            let n = self.fresh_net();
            self.const0 = Some(n);
            n
        }
    }

    /// The constant-1 net (created on first use).
    pub fn const1(&mut self) -> NetId {
        if let Some(n) = self.const1 {
            n
        } else {
            let n = self.fresh_net();
            self.const1 = Some(n);
            n
        }
    }

    /// Instantiates a cell and returns its output net.
    pub fn cell(&mut self, kind: CellKind, inputs: &[NetId]) -> NetId {
        assert_eq!(
            inputs.len(),
            kind.num_inputs(),
            "{kind:?} takes {} inputs",
            kind.num_inputs()
        );
        let output = self.fresh_net();
        self.cells.push(Cell {
            kind,
            inputs: inputs.to_vec(),
            output,
            size: 1.0,
        });
        output
    }

    /// Instantiates a D flip-flop and returns its Q net.
    pub fn dff(&mut self, d: NetId) -> NetId {
        let q = self.fresh_net();
        self.dffs.push(Dff { d, q });
        q
    }

    /// Instantiates a D flip-flop whose D input will be wired later with
    /// [`Netlist::connect_dff`] — needed for state feedback (e.g. an
    /// arbiter's priority pointer, whose next value depends on grants that
    /// depend on the pointer). Returns `(handle, q)`.
    pub fn dff_deferred(&mut self) -> (usize, NetId) {
        let q = self.fresh_net();
        self.dffs.push(Dff { d: usize::MAX, q });
        (self.dffs.len() - 1, q)
    }

    /// Completes a deferred flip-flop by wiring its D input.
    pub fn connect_dff(&mut self, handle: usize, d: NetId) {
        assert_eq!(self.dffs[handle].d, usize::MAX, "DFF already connected");
        assert!(d < self.num_nets, "invalid net");
        self.dffs[handle].d = d;
    }

    /// Rewires an existing flip-flop's D input (used by the buffering pass).
    pub(crate) fn set_dff_d(&mut self, index: usize, d: NetId) {
        assert!(d < self.num_nets, "invalid net");
        self.dffs[index].d = d;
    }

    // ---- gate shorthands -------------------------------------------------

    /// Inverter.
    pub fn not(&mut self, a: NetId) -> NetId {
        self.cell(CellKind::Inv, &[a])
    }

    /// 2-input AND.
    pub fn and2(&mut self, a: NetId, b: NetId) -> NetId {
        self.cell(CellKind::And2, &[a, b])
    }

    /// 2-input OR.
    pub fn or2(&mut self, a: NetId, b: NetId) -> NetId {
        self.cell(CellKind::Or2, &[a, b])
    }

    /// 2:1 mux: `sel ? b : a`.
    pub fn mux2(&mut self, a: NetId, b: NetId, sel: NetId) -> NetId {
        self.cell(CellKind::Mux2, &[a, b, sel])
    }

    /// Balanced AND reduction tree over `nets` (empty input = const 1).
    pub fn and_tree(&mut self, nets: &[NetId]) -> NetId {
        self.reduce_tree(nets, CellKind::And2, CellKind::And3, CellKind::And4, true)
    }

    /// Balanced OR reduction tree over `nets` (empty input = const 0).
    pub fn or_tree(&mut self, nets: &[NetId]) -> NetId {
        self.reduce_tree(nets, CellKind::Or2, CellKind::Or3, CellKind::Or4, false)
    }

    fn reduce_tree(
        &mut self,
        nets: &[NetId],
        k2: CellKind,
        k3: CellKind,
        k4: CellKind,
        empty_is_one: bool,
    ) -> NetId {
        match nets.len() {
            0 => {
                if empty_is_one {
                    self.const1()
                } else {
                    self.const0()
                }
            }
            1 => nets[0],
            _ => {
                let mut level: Vec<NetId> = nets.to_vec();
                while level.len() > 1 {
                    let mut next = Vec::with_capacity(level.len().div_ceil(4));
                    let mut i = 0;
                    while i < level.len() {
                        let rem = level.len() - i;
                        let take = match rem {
                            1 => 1,
                            2 => 2,
                            3 => 3,
                            5 => 3, // avoid a trailing 1-chunk: 5 -> 3 + 2
                            6 => 3,
                            _ => 4,
                        };
                        let out = match take {
                            1 => level[i],
                            2 => self.cell(k2, &[level[i], level[i + 1]]),
                            3 => self.cell(k3, &[level[i], level[i + 1], level[i + 2]]),
                            _ => {
                                self.cell(k4, &[level[i], level[i + 1], level[i + 2], level[i + 3]])
                            }
                        };
                        next.push(out);
                        i += take;
                    }
                    level = next;
                }
                level[0]
            }
        }
    }

    /// One-hot mux: `OR_i (sel[i] AND data[i])`. `sel` must be one-hot (or
    /// all-zero, yielding 0).
    pub fn onehot_mux(&mut self, sel: &[NetId], data: &[NetId]) -> NetId {
        assert_eq!(sel.len(), data.len());
        let terms: Vec<NetId> = sel
            .iter()
            .zip(data)
            .map(|(&s, &d)| self.and2(s, d))
            .collect();
        self.or_tree(&terms)
    }

    /// Inclusive prefix OR (Sklansky network): `out[i] = OR(in[0..=i])`,
    /// logarithmic depth. Used for the priority chains of fixed-priority
    /// arbiters.
    pub fn prefix_or(&mut self, nets: &[NetId]) -> Vec<NetId> {
        let n = nets.len();
        let mut cur: Vec<NetId> = nets.to_vec();
        let mut stride = 1;
        while stride < n {
            let prev = cur.clone();
            for i in 0..n {
                // Sklansky: combine with the block boundary element.
                if (i / stride) % 2 == 1 {
                    let boundary = (i / stride) * stride - 1;
                    cur[i] = self.or2(prev[boundary], prev[i]);
                }
            }
            stride *= 2;
        }
        cur
    }

    // ---- accessors --------------------------------------------------------

    /// Number of nets.
    pub fn num_nets(&self) -> usize {
        self.num_nets
    }

    /// Combinational cells.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Mutable access for the optimization passes.
    pub(crate) fn cells_mut(&mut self) -> &mut Vec<Cell> {
        &mut self.cells
    }

    /// Sets the drive strength of one cell (manual sizing).
    pub fn set_cell_size(&mut self, idx: usize, size: f64) {
        assert!(size > 0.0, "drive strength must be positive");
        self.cells[idx].size = size;
    }

    /// Flip-flops.
    pub fn dffs(&self) -> &[Dff] {
        &self.dffs
    }

    /// Primary inputs.
    pub fn primary_inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Primary outputs.
    pub fn primary_outputs(&self) -> &[NetId] {
        &self.outputs
    }

    /// Constant nets `(const0, const1)` if materialized.
    pub fn constants(&self) -> (Option<NetId>, Option<NetId>) {
        (self.const0, self.const1)
    }

    /// Total cell instances (combinational + sequential).
    pub fn instance_count(&self) -> usize {
        self.cells.len() + self.dffs.len()
    }

    /// Topological order of combinational cells (indices into
    /// [`Netlist::cells`]). Panics on combinational loops — the netlists
    /// built here are loop-free by construction (the wavefront builder
    /// replicates the tile array per diagonal precisely to avoid loops,
    /// §2.2).
    pub fn topo_order(&self) -> Vec<usize> {
        let mut driver: Vec<Option<usize>> = vec![None; self.num_nets];
        for (ci, c) in self.cells.iter().enumerate() {
            driver[c.output] = Some(ci);
        }
        let mut indegree: Vec<usize> = self
            .cells
            .iter()
            .map(|c| c.inputs.iter().filter(|&&n| driver[n].is_some()).count())
            .collect();
        let mut fanout_cells: Vec<Vec<usize>> = vec![Vec::new(); self.num_nets];
        for (ci, c) in self.cells.iter().enumerate() {
            for &n in &c.inputs {
                if driver[n].is_some() {
                    fanout_cells[n].push(ci);
                }
            }
        }
        let mut order = Vec::with_capacity(self.cells.len());
        let mut ready: Vec<usize> = indegree
            .iter()
            .enumerate()
            .filter(|(_, &d)| d == 0)
            .map(|(i, _)| i)
            .collect();
        while let Some(ci) = ready.pop() {
            order.push(ci);
            for &sink in &fanout_cells[self.cells[ci].output] {
                indegree[sink] -= 1;
                if indegree[sink] == 0 {
                    ready.push(sink);
                }
            }
        }
        assert_eq!(
            order.len(),
            self.cells.len(),
            "combinational loop in netlist '{}'",
            self.name
        );
        order
    }

    /// Capacitive load on each net in fF: sink pin caps plus wire cap per
    /// fanout; primary outputs carry a fixed external load of 4 unit
    /// inverter caps.
    pub fn net_loads_ff(&self, lib: &CellLibrary) -> Vec<f64> {
        let mut load = vec![0.0f64; self.num_nets];
        for c in &self.cells {
            for &n in &c.inputs {
                load[n] += lib.input_cap_ff(c.kind, c.size) + lib.wire_cap_per_fanout_ff;
            }
        }
        for d in &self.dffs {
            load[d.d] += lib.dff.d_cap_ff + lib.wire_cap_per_fanout_ff;
        }
        for &o in &self.outputs {
            load[o] += 4.0 * lib.c0_ff;
        }
        load
    }

    /// Total cell area in µm².
    pub fn area_um2(&self, lib: &CellLibrary) -> f64 {
        let comb: f64 = self
            .cells
            .iter()
            .map(|c| lib.cell_area_um2(c.kind, c.size))
            .sum();
        comb + self.dffs.len() as f64 * lib.dff.area
    }

    /// Evaluates the combinational logic for one input/state vector.
    ///
    /// `state[i]` is the current Q value of `dffs()[i]`. Returns the primary
    /// output values and the next-state vector (D values).
    pub fn eval(&self, inputs: &[bool], state: &[bool]) -> (Vec<bool>, Vec<bool>) {
        assert_eq!(inputs.len(), self.inputs.len(), "input width mismatch");
        assert_eq!(state.len(), self.dffs.len(), "state width mismatch");
        let mut value = vec![false; self.num_nets];
        for (i, &n) in self.inputs.iter().enumerate() {
            value[n] = inputs[i];
        }
        if let Some(n) = self.const1 {
            value[n] = true;
        }
        for (i, d) in self.dffs.iter().enumerate() {
            value[d.q] = state[i];
        }
        let mut in_vals = Vec::with_capacity(4);
        for ci in self.topo_order() {
            let c = &self.cells[ci];
            in_vals.clear();
            in_vals.extend(c.inputs.iter().map(|&n| value[n]));
            value[c.output] = c.kind.eval(&in_vals);
        }
        let outs = self.outputs.iter().map(|&n| value[n]).collect();
        let next = self.dffs.iter().map(|d| value[d.d]).collect();
        (outs, next)
    }

    /// Structural sanity check: every net has exactly one driver and no
    /// deferred flip-flop is left unconnected.
    pub fn validate(&self) -> Result<(), String> {
        for (i, d) in self.dffs.iter().enumerate() {
            if d.d == usize::MAX {
                return Err(format!("DFF {i} left unconnected in '{}'", self.name));
            }
        }
        let mut drivers = vec![0usize; self.num_nets];
        for &n in &self.inputs {
            drivers[n] += 1;
        }
        for c in &self.cells {
            drivers[c.output] += 1;
        }
        for d in &self.dffs {
            drivers[d.q] += 1;
        }
        if let Some(n) = self.const0 {
            drivers[n] += 1;
        }
        if let Some(n) = self.const1 {
            drivers[n] += 1;
        }
        for (n, &d) in drivers.iter().enumerate() {
            if d == 0 {
                return Err(format!("net {n} has no driver in '{}'", self.name));
            }
            if d > 1 {
                return Err(format!("net {n} has {d} drivers in '{}'", self.name));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_eval_simple_logic() {
        let mut nl = Netlist::new("test");
        let a = nl.input();
        let b = nl.input();
        let c = nl.input();
        let ab = nl.and2(a, b);
        let out = nl.or2(ab, c);
        nl.output(out);
        nl.validate().unwrap();
        for bits in 0..8u32 {
            let inp: Vec<bool> = (0..3).map(|i| bits >> i & 1 != 0).collect();
            let (o, _) = nl.eval(&inp, &[]);
            assert_eq!(o[0], (inp[0] && inp[1]) || inp[2]);
        }
    }

    #[test]
    fn deferred_dff_builds_toggle_flop() {
        // q' = !q via a deferred flip-flop.
        let mut nl = Netlist::new("toggle");
        let (h, q) = nl.dff_deferred();
        let notq = nl.not(q);
        nl.connect_dff(h, notq);
        nl.output(q);
        nl.validate().unwrap();
        let (o, next) = nl.eval(&[], &[false]);
        assert!(!o[0]);
        assert_eq!(next, vec![true]);
        let (o, next) = nl.eval(&[], &[true]);
        assert!(o[0]);
        assert_eq!(next, vec![false]);
    }

    #[test]
    fn unconnected_deferred_dff_fails_validation() {
        let mut nl = Netlist::new("dangling");
        let (_h, q) = nl.dff_deferred();
        nl.output(q);
        assert!(nl.validate().is_err());
    }

    #[test]
    fn and_or_trees_compute_reductions() {
        for n in 1..=17usize {
            let mut nl = Netlist::new("tree");
            let ins = nl.inputs_vec(n);
            let a = nl.and_tree(&ins);
            let o = nl.or_tree(&ins);
            nl.output(a);
            nl.output(o);
            nl.validate().unwrap();
            for trial in [0u32, 1, (1 << n) - 1, 0b1010101 & ((1 << n) - 1)] {
                let inp: Vec<bool> = (0..n).map(|i| trial >> i & 1 != 0).collect();
                let (outs, _) = nl.eval(&inp, &[]);
                assert_eq!(outs[0], inp.iter().all(|&b| b), "and n={n} {trial:b}");
                assert_eq!(outs[1], inp.iter().any(|&b| b), "or n={n} {trial:b}");
            }
        }
    }

    #[test]
    fn tree_depth_is_logarithmic() {
        // A 64-input OR tree should be 3 levels of OR4 (depth 3), not 63
        // chained OR2s. Count levels via longest path in cells.
        let mut nl = Netlist::new("depth");
        let ins = nl.inputs_vec(64);
        let o = nl.or_tree(&ins);
        nl.output(o);
        // Longest combinational depth:
        let order = nl.topo_order();
        let mut depth = vec![0usize; nl.num_nets()];
        let mut maxd = 0;
        for ci in order {
            let c = &nl.cells()[ci];
            let d = c.inputs.iter().map(|&n| depth[n]).max().unwrap() + 1;
            depth[c.output] = d;
            maxd = maxd.max(d);
        }
        assert_eq!(maxd, 3);
    }

    #[test]
    fn prefix_or_matches_reference() {
        for n in 1..=16usize {
            let mut nl = Netlist::new("prefix");
            let ins = nl.inputs_vec(n);
            let pre = nl.prefix_or(&ins);
            for &p in &pre {
                nl.output(p);
            }
            nl.validate().unwrap();
            for trial in 0..(1u32 << n.min(12)) {
                let inp: Vec<bool> = (0..n).map(|i| trial >> i & 1 != 0).collect();
                let (outs, _) = nl.eval(&inp, &[]);
                let mut acc = false;
                for i in 0..n {
                    acc |= inp[i];
                    assert_eq!(outs[i], acc, "n={n} i={i} trial={trial:b}");
                }
            }
        }
    }

    #[test]
    fn onehot_mux_selects() {
        let mut nl = Netlist::new("ohm");
        let sel = nl.inputs_vec(4);
        let data = nl.inputs_vec(4);
        let o = nl.onehot_mux(&sel, &data);
        nl.output(o);
        for i in 0..4 {
            let mut inp = vec![false; 8];
            inp[i] = true; // one-hot select
            inp[4 + i] = true;
            let (outs, _) = nl.eval(&inp, &[]);
            assert!(outs[0]);
            inp[4 + i] = false;
            let (outs, _) = nl.eval(&inp, &[]);
            assert!(!outs[0]);
        }
    }

    #[test]
    fn validate_rejects_undriven_nets() {
        // Manually corrupt: reference a net that no one drives.
        let mut nl = Netlist::new("bad");
        let a = nl.input();
        let _ = a;
        // Create a dangling net by reserving an id through const0 removal
        // trick: build a cell referencing a never-created net id is not
        // possible through the API, so validate a correct netlist instead
        // and check Ok.
        assert!(nl.validate().is_ok());
    }
}
