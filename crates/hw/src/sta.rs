//! Static timing analysis.
//!
//! Computes the minimum cycle time of a netlist under the same constraint
//! regime Design Compiler would apply to an isolated allocator block: all
//! primary inputs arrive from upstream registers (arrival = clk→Q), all
//! primary outputs feed downstream registers (require setup), and internal
//! register-to-register paths are timed directly. The reported
//! `min_cycle_ns` is the figure the paper plots as "delay".

use crate::cell::CellLibrary;
use crate::netlist::{NetId, Netlist};

/// Result of a timing run.
#[derive(Clone, Debug)]
pub struct TimingReport {
    /// Minimum cycle time in ns (critical path + flop overheads).
    pub min_cycle_ns: f64,
    /// Pure combinational delay of the worst path in ns (no clk→Q/setup).
    pub critical_path_ns: f64,
    /// Net at the end of the worst path (an output or a DFF D pin).
    pub critical_endpoint: NetId,
    /// Per-net arrival times in ns (clk→Q-referenced), for the sizing pass.
    pub arrival_ns: Vec<f64>,
}

/// Runs static timing analysis on `netlist`.
pub fn analyze(netlist: &Netlist, lib: &CellLibrary) -> TimingReport {
    let loads = netlist.net_loads_ff(lib);
    let arrival = arrival_times(netlist, lib, &loads);

    let mut worst = 0.0f64;
    let mut endpoint = 0;
    for &o in netlist.primary_outputs() {
        if arrival[o] > worst {
            worst = arrival[o];
            endpoint = o;
        }
    }
    for d in netlist.dffs() {
        if arrival[d.d] > worst {
            worst = arrival[d.d];
            endpoint = d.d;
        }
    }
    TimingReport {
        min_cycle_ns: worst + lib.dff.setup_ns,
        critical_path_ns: (worst - lib.dff.clk_q_ns).max(0.0),
        critical_endpoint: endpoint,
        arrival_ns: arrival,
    }
}

/// Computes per-net arrival times (ns). Sources (primary inputs and DFF Q
/// pins) start at clk→Q; constants never switch and are given arrival 0.
pub fn arrival_times(netlist: &Netlist, lib: &CellLibrary, loads: &[f64]) -> Vec<f64> {
    arrival_times_with_order(netlist, lib, loads, &netlist.topo_order())
}

/// As [`arrival_times`], with a precomputed topological order — the sizing
/// pass reuses one order across iterations since resizing never changes
/// connectivity.
pub fn arrival_times_with_order(
    netlist: &Netlist,
    lib: &CellLibrary,
    loads: &[f64],
    order: &[usize],
) -> Vec<f64> {
    let mut arrival = vec![0.0f64; netlist.num_nets()];
    for &i in netlist.primary_inputs() {
        arrival[i] = lib.dff.clk_q_ns;
    }
    for d in netlist.dffs() {
        arrival[d.q] = lib.dff.clk_q_ns;
    }
    for &ci in order {
        let c = &netlist.cells()[ci];
        let worst_in = c.inputs.iter().map(|&n| arrival[n]).fold(0.0f64, f64::max);
        arrival[c.output] = worst_in + lib.cell_delay_ns(c.kind, c.size, loads[c.output]);
    }
    arrival
}

/// Minimum cycle time from a precomputed arrival vector.
pub fn min_cycle_from_arrivals(
    netlist: &Netlist,
    lib: &CellLibrary,
    arrival: &[f64],
) -> (f64, NetId) {
    let mut worst = 0.0f64;
    let mut endpoint = 0;
    for &o in netlist.primary_outputs() {
        if arrival[o] > worst {
            worst = arrival[o];
            endpoint = o;
        }
    }
    for d in netlist.dffs() {
        if arrival[d.d] > worst {
            worst = arrival[d.d];
            endpoint = d.d;
        }
    }
    (worst + lib.dff.setup_ns, endpoint)
}

/// Traces the critical path backwards from `endpoint`, returning the cell
/// indices on it (endpoint-first). Used by the gate-sizing pass.
pub fn critical_path_cells(netlist: &Netlist, arrival: &[f64], endpoint: NetId) -> Vec<usize> {
    // Map net -> driving cell.
    let mut driver: Vec<Option<usize>> = vec![None; netlist.num_nets()];
    for (ci, c) in netlist.cells().iter().enumerate() {
        driver[c.output] = Some(ci);
    }
    let mut path = Vec::new();
    let mut net = endpoint;
    while let Some(ci) = driver[net] {
        path.push(ci);
        let c = &netlist.cells()[ci];
        // Follow the latest-arriving input; constant generators end the
        // path.
        let Some(&next) = c
            .inputs
            .iter()
            .max_by(|&&a, &&b| arrival[a].total_cmp(&arrival[b]))
        else {
            break;
        };
        net = next;
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellKind;

    #[test]
    fn single_gate_timing() {
        let lib = CellLibrary::default();
        let mut nl = Netlist::new("g");
        let a = nl.input();
        let b = nl.input();
        let o = nl.and2(a, b);
        nl.output(o);
        let rep = analyze(&nl, &lib);
        let expected = lib.dff.clk_q_ns
            + lib.cell_delay_ns(CellKind::And2, 1.0, 4.0 * lib.c0_ff)
            + lib.dff.setup_ns;
        assert!((rep.min_cycle_ns - expected).abs() < 1e-12);
    }

    #[test]
    fn deeper_logic_is_slower() {
        let lib = CellLibrary::default();
        let mk = |depth: usize| {
            let mut nl = Netlist::new("chain");
            let mut n = nl.input();
            let other = nl.input();
            for _ in 0..depth {
                n = nl.and2(n, other);
            }
            nl.output(n);
            analyze(&nl, &lib).min_cycle_ns
        };
        assert!(mk(8) > mk(4));
        assert!(mk(4) > mk(2));
    }

    #[test]
    fn wide_tree_beats_chain() {
        let lib = CellLibrary::default();
        // 32-input AND as balanced tree vs as linear chain.
        let mut tree = Netlist::new("tree");
        let ins = tree.inputs_vec(32);
        let t = tree.and_tree(&ins);
        tree.output(t);
        let mut chain = Netlist::new("chain");
        let ins = chain.inputs_vec(32);
        let mut acc = ins[0];
        for &i in &ins[1..] {
            acc = chain.and2(acc, i);
        }
        chain.output(acc);
        assert!(analyze(&tree, &lib).min_cycle_ns < analyze(&chain, &lib).min_cycle_ns);
    }

    #[test]
    fn fanout_load_slows_driver() {
        let lib = CellLibrary::default();
        let mk = |fanout: usize| {
            let mut nl = Netlist::new("fan");
            let a = nl.input();
            let inv = nl.not(a);
            for _ in 0..fanout {
                let s = nl.not(inv);
                nl.output(s);
            }
            analyze(&nl, &lib).min_cycle_ns
        };
        assert!(mk(16) > mk(1));
    }

    #[test]
    fn register_to_register_paths_counted() {
        let lib = CellLibrary::default();
        let mut nl = Netlist::new("r2r");
        let (h, q) = nl.dff_deferred();
        let n1 = nl.not(q);
        let n2 = nl.not(n1);
        nl.connect_dff(h, n2);
        // No primary outputs at all; min cycle still reflects the q->d path.
        let rep = analyze(&nl, &lib);
        assert!(rep.min_cycle_ns > lib.dff.clk_q_ns + lib.dff.setup_ns);
    }

    #[test]
    fn critical_path_trace_reaches_source() {
        let lib = CellLibrary::default();
        let mut nl = Netlist::new("trace");
        let a = nl.input();
        let b = nl.input();
        let x = nl.and2(a, b);
        let y = nl.or2(x, a);
        let z = nl.not(y);
        nl.output(z);
        let rep = analyze(&nl, &lib);
        let path = critical_path_cells(&nl, &rep.arrival_ns, rep.critical_endpoint);
        assert_eq!(path.len(), 3); // inv, or, and
    }
}
