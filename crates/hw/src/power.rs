//! Activity-based power estimation.
//!
//! Follows the paper's methodology (§3.1): "the average power consumption
//! when applying a default activity factor of 0.5 to all inputs". Signal
//! probabilities are propagated through the logic assuming spatial
//! independence; per-net switching activity under temporal independence is
//! `α = 2·p·(1-p)`, scaled so that the primary inputs hit the configured
//! activity factor. Dynamic power is evaluated at the design's own maximum
//! frequency (1 / min-cycle), which is how a synthesis power report at the
//! target clock reads.

use crate::cell::CellLibrary;
use crate::netlist::Netlist;

/// Result of a power run.
#[derive(Clone, Debug)]
pub struct PowerReport {
    /// Total average power in mW.
    pub total_mw: f64,
    /// Switching (net + internal) power in mW.
    pub dynamic_mw: f64,
    /// Leakage power in mW.
    pub leakage_mw: f64,
    /// Clock-tree power (flop clock pins) in mW.
    pub clock_mw: f64,
}

/// Default input activity factor from the paper.
pub const PAPER_ACTIVITY_FACTOR: f64 = 0.5;

/// Computes per-net signal one-probabilities (primary inputs and flop
/// outputs at 0.5, constants at 0/1) under the independence assumption.
pub fn signal_probabilities(netlist: &Netlist) -> Vec<f64> {
    let mut p = vec![0.0f64; netlist.num_nets()];
    for &i in netlist.primary_inputs() {
        p[i] = 0.5;
    }
    for d in netlist.dffs() {
        p[d.q] = 0.5;
    }
    let (c0, c1) = netlist.constants();
    if let Some(n) = c0 {
        p[n] = 0.0;
    }
    if let Some(n) = c1 {
        p[n] = 1.0;
    }
    let mut probs = Vec::with_capacity(4);
    for ci in netlist.topo_order() {
        let c = &netlist.cells()[ci];
        probs.clear();
        probs.extend(c.inputs.iter().map(|&n| p[n]));
        p[c.output] = c.kind.output_probability(&probs);
    }
    p
}

/// Estimates average power at clock frequency `freq_ghz` with the given
/// input activity factor.
pub fn analyze(
    netlist: &Netlist,
    lib: &CellLibrary,
    freq_ghz: f64,
    activity_factor: f64,
) -> PowerReport {
    let loads = netlist.net_loads_ff(lib);
    let p = signal_probabilities(netlist);
    // Scale so a p=0.5 net toggles at the configured activity factor:
    // 2·p·(1-p) = 0.5 at p = 0.5, so scale = af / 0.5.
    let scale = activity_factor / 0.5;
    let vdd2 = lib.vdd * lib.vdd;

    let mut dynamic_uw = 0.0f64;
    let mut leakage_nw = 0.0f64;
    // Net switching power for driven nets.
    for ci in 0..netlist.cells().len() {
        let c = &netlist.cells()[ci];
        let alpha = 2.0 * p[c.output] * (1.0 - p[c.output]) * scale;
        let internal = lib.params(c.kind).internal_energy;
        // fF · V² · GHz = µW; the ½ accounts for one charge event per toggle
        // pair.
        dynamic_uw += 0.5 * alpha * loads[c.output] * (1.0 + internal) * vdd2 * freq_ghz;
        leakage_nw += lib.params(c.kind).leakage_nw * (0.5 + 0.5 * c.size);
    }
    // Primary-input nets switch too (driven by upstream logic, but their
    // load is ours).
    for &i in netlist.primary_inputs() {
        let alpha = 2.0 * p[i] * (1.0 - p[i]) * scale;
        dynamic_uw += 0.5 * alpha * loads[i] * vdd2 * freq_ghz;
    }
    // Flop Q nets and clock pins.
    let mut clock_uw = 0.0f64;
    for d in netlist.dffs() {
        let alpha = 2.0 * p[d.q] * (1.0 - p[d.q]) * scale;
        dynamic_uw += 0.5 * alpha * loads[d.q] * vdd2 * freq_ghz;
        // The clock toggles twice per cycle regardless of data activity.
        clock_uw += lib.dff.clk_cap_ff * vdd2 * freq_ghz;
        leakage_nw += lib.dff.leakage_nw;
    }

    let dynamic_mw = dynamic_uw / 1000.0;
    let clock_mw = clock_uw / 1000.0;
    let leakage_mw = leakage_nw / 1e6;
    PowerReport {
        total_mw: dynamic_mw + clock_mw + leakage_mw,
        dynamic_mw,
        leakage_mw,
        clock_mw,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probability_propagation_through_and() {
        let mut nl = Netlist::new("p");
        let a = nl.input();
        let b = nl.input();
        let o = nl.and2(a, b);
        nl.output(o);
        let p = signal_probabilities(&nl);
        assert!((p[o] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn constants_do_not_switch() {
        let mut nl = Netlist::new("c");
        let a = nl.input();
        let one = nl.const1();
        let o = nl.and2(a, one);
        nl.output(o);
        let p = signal_probabilities(&nl);
        assert!((p[o] - 0.5).abs() < 1e-12);
        let rep = analyze(&nl, &CellLibrary::default(), 1.0, 0.5);
        assert!(rep.total_mw > 0.0);
    }

    #[test]
    fn power_scales_with_frequency_and_activity() {
        let mut nl = Netlist::new("f");
        let ins = nl.inputs_vec(16);
        let o = nl.or_tree(&ins);
        nl.output(o);
        let lib = CellLibrary::default();
        let p1 = analyze(&nl, &lib, 1.0, 0.5);
        let p2 = analyze(&nl, &lib, 2.0, 0.5);
        assert!(
            (p2.dynamic_mw / p1.dynamic_mw - 2.0).abs() < 1e-9,
            "dynamic power must scale linearly with f"
        );
        let p3 = analyze(&nl, &lib, 1.0, 0.25);
        assert!(p3.dynamic_mw < p1.dynamic_mw);
        // Leakage is frequency independent.
        assert!((p1.leakage_mw - p2.leakage_mw).abs() < 1e-15);
    }

    #[test]
    fn bigger_netlists_burn_more_power() {
        let lib = CellLibrary::default();
        let mk = |n: usize| {
            let mut nl = Netlist::new("sz");
            let ins = nl.inputs_vec(n);
            let o = nl.or_tree(&ins);
            nl.output(o);
            analyze(&nl, &lib, 1.0, 0.5).total_mw
        };
        assert!(mk(64) > mk(8));
    }

    #[test]
    fn flops_cost_clock_power() {
        let lib = CellLibrary::default();
        let mut nl = Netlist::new("ff");
        let a = nl.input();
        let q = nl.dff(a);
        nl.output(q);
        let rep = analyze(&nl, &lib, 1.0, 0.5);
        assert!(rep.clock_mw > 0.0);
    }
}
