//! Property-based tests for the hardware model: netlist evaluation,
//! timing monotonicity, probability propagation, and optimization safety.

use noc_hw::builders::arbiters::{build_arbiter, fixed_priority_grants, HwArbiterKind};
use noc_hw::{CellLibrary, Netlist};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn or_and_trees_correct_for_any_width(
        width in 1usize..60,
        pattern in proptest::collection::vec(proptest::bool::ANY, 60)
    ) {
        let mut nl = Netlist::new("t");
        let ins = nl.inputs_vec(width);
        let o = nl.or_tree(&ins);
        let a = nl.and_tree(&ins);
        nl.output(o);
        nl.output(a);
        let inp = &pattern[..width];
        let (outs, _) = nl.eval(inp, &[]);
        prop_assert_eq!(outs[0], inp.iter().any(|&b| b));
        prop_assert_eq!(outs[1], inp.iter().all(|&b| b));
    }

    #[test]
    fn fixed_priority_netlist_is_one_hot_lowest(
        width in 1usize..40,
        pattern in proptest::collection::vec(proptest::bool::ANY, 40)
    ) {
        let mut nl = Netlist::new("fp");
        let ins = nl.inputs_vec(width);
        for g in fixed_priority_grants(&mut nl, &ins) {
            nl.output(g);
        }
        let inp = &pattern[..width];
        let (outs, _) = nl.eval(inp, &[]);
        let winner: Vec<usize> = outs.iter().enumerate().filter(|(_, &g)| g).map(|(i, _)| i).collect();
        let expect: Vec<usize> = inp.iter().position(|&b| b).into_iter().collect();
        prop_assert_eq!(winner, expect);
    }

    #[test]
    fn probabilities_stay_in_unit_interval(
        width in 2usize..30,
        pattern in proptest::collection::vec(proptest::bool::ANY, 30)
    ) {
        // A random-ish arbiter netlist: all signal probabilities must lie
        // in [0, 1].
        let mut nl = Netlist::new("p");
        let ins = nl.inputs_vec(width);
        let arb = build_arbiter(&mut nl, HwArbiterKind::RoundRobin, &ins);
        for &g in &arb.grants {
            nl.output(g);
        }
        arb.commit_own_grants(&mut nl);
        let probs = noc_hw::power::signal_probabilities(&nl);
        for (i, p) in probs.iter().enumerate() {
            prop_assert!((0.0..=1.0).contains(p), "net {i}: {p}");
        }
        let _ = pattern;
    }

    #[test]
    fn buffering_never_changes_function(
        width in 2usize..12,
        fanout in 8usize..24,
        pattern in proptest::collection::vec(proptest::bool::ANY, 12)
    ) {
        let mut nl = Netlist::new("buf");
        let ins = nl.inputs_vec(width);
        let x = nl.or_tree(&ins);
        for _ in 0..fanout {
            let s = nl.not(x);
            nl.output(s);
        }
        let inp = &pattern[..width];
        let (before, _) = nl.eval(inp, &[]);
        noc_hw::optimize::buffer_high_fanout(&mut nl, 4);
        nl.validate().unwrap();
        let (after, _) = nl.eval(inp, &[]);
        prop_assert_eq!(before, after);
    }

    #[test]
    fn upsizing_a_cell_never_slows_the_design(width in 4usize..24) {
        // Monotonicity of the delay model under drive-strength increase of
        // the output-driving cell.
        let lib = CellLibrary::default();
        let mut nl = Netlist::new("mono");
        let ins = nl.inputs_vec(width);
        let o = nl.or_tree(&ins);
        let out = nl.not(o);
        nl.output(out);
        let before = noc_hw::sta::analyze(&nl, &lib).min_cycle_ns;
        // Upsize the final inverter only: reduces its delay, adds load to
        // its fanin — but the fanin cell's load increase is bounded; check
        // overall cycle does not explode (> 1.5x) and usually improves.
        let last = nl.cells().len() - 1;
        nl.set_cell_size(last, 4.0);
        let after = noc_hw::sta::analyze(&nl, &lib).min_cycle_ns;
        prop_assert!(after < before * 1.5, "{before} -> {after}");
    }
}
