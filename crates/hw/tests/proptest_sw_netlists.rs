//! Property-based netlist ↔ behavioural equivalence for switch allocators:
//! random request streams, carrying hardware state across cycles.

// Panicking on setup failure is the right behaviour outside library code.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use noc_core::{SwitchAllocatorKind, SwitchRequests};
use noc_hw::builders::sw_alloc::switch_allocator_netlist;
use proptest::prelude::*;

fn drive_both(
    kind: SwitchAllocatorKind,
    ports: usize,
    vcs: usize,
    stream: &[Vec<Option<u8>>],
) -> Result<(), TestCaseError> {
    let nl = switch_allocator_netlist(kind, ports, vcs);
    nl.validate().unwrap();
    let mut state = match kind {
        SwitchAllocatorKind::SepIf(noc_arbiter::ArbiterKind::Matrix)
        | SwitchAllocatorKind::SepOf(noc_arbiter::ArbiterKind::Matrix) => {
            vec![true; nl.dffs().len()]
        }
        _ => vec![false; nl.dffs().len()],
    };
    let mut model = kind.build(ports, vcs);
    for raw in stream {
        let mut reqs = SwitchRequests::new(ports, vcs);
        let mut inputs = vec![false; ports * vcs * ports];
        for i in 0..ports {
            for v in 0..vcs {
                if let Some(Some(o)) = raw.get(i * vcs + v) {
                    let o = *o as usize % ports;
                    reqs.request(i, v, o);
                    inputs[(i * vcs + v) * ports + o] = true;
                }
            }
        }
        let (outs, next) = nl.eval(&inputs, &state);
        state = next;
        let grants = model.allocate(&reqs);
        let mut want_xbar = vec![false; ports * ports];
        let mut want_grant = vec![false; ports * vcs];
        for g in &grants {
            want_xbar[g.in_port * ports + g.out_port] = true;
            want_grant[g.in_port * vcs + g.vc] = true;
        }
        prop_assert_eq!(&outs[..ports * ports], &want_xbar[..], "{:?} xbar", kind);
        prop_assert_eq!(
            &outs[ports * ports..ports * ports + ports * vcs],
            &want_grant[..],
            "{:?} vc grants",
            kind
        );
    }
    Ok(())
}

fn stream_strategy(ports: usize, vcs: usize) -> impl Strategy<Value = Vec<Vec<Option<u8>>>> {
    proptest::collection::vec(
        proptest::collection::vec(proptest::option::of(proptest::num::u8::ANY), ports * vcs),
        1..12,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sep_if_rr_netlist_equals_model(stream in stream_strategy(4, 3)) {
        drive_both(
            SwitchAllocatorKind::SepIf(noc_arbiter::ArbiterKind::RoundRobin),
            4, 3, &stream,
        )?;
    }

    #[test]
    fn sep_if_matrix_netlist_equals_model(stream in stream_strategy(3, 2)) {
        drive_both(
            SwitchAllocatorKind::SepIf(noc_arbiter::ArbiterKind::Matrix),
            3, 2, &stream,
        )?;
    }

    #[test]
    fn sep_of_rr_netlist_equals_model(stream in stream_strategy(4, 2)) {
        drive_both(
            SwitchAllocatorKind::SepOf(noc_arbiter::ArbiterKind::RoundRobin),
            4, 2, &stream,
        )?;
    }

    #[test]
    fn wavefront_netlist_equals_model(stream in stream_strategy(4, 2)) {
        drive_both(SwitchAllocatorKind::Wavefront, 4, 2, &stream)?;
    }

    #[test]
    fn paper_radix_sep_if_netlist_equals_model(stream in stream_strategy(5, 2)) {
        // The mesh design point's P=5.
        drive_both(
            SwitchAllocatorKind::SepIf(noc_arbiter::ArbiterKind::RoundRobin),
            5, 2, &stream,
        )?;
    }
}
