//! Differential test layer: bit-parallel allocator kernels vs their scalar
//! reference predecessors.
//!
//! Every allocator in this crate exists twice — the `u64` kernel behind the
//! public constructors and the element-wise scalar implementation preserved
//! in the per-module `reference` submodules. This suite drives both sides
//! with identical request streams and asserts grant-identical behaviour:
//!
//! * exhaustively, over **every** request matrix up to 4×4 for all five
//!   paper allocator variants, across multi-round priority-rotation
//!   sequences;
//! * randomly (via the vendored proptest shim), over 5×5–16×16 matrices,
//!   with matrix-case minimization on failure;
//! * at the switch-allocation layer (per-VC request matrices, including the
//!   wavefront pre-selection arbiters);
//! * at the VC-allocation layer, with sparse free-VC masks and the class
//!   legality structure;
//! * at the speculation layer, where the AND-NOT masking kernel must agree
//!   with the scalar `Vec<bool>` masking for every mode.
//!
//! Priority state is part of the contract: each comparison drives one
//! allocator pair through a whole sequence of rounds, so a single divergent
//! pointer update surfaces as a grant mismatch in a later round even if the
//! grants of the divergent round happen to coincide.

use noc_core::{
    AllocatorKind, BitMatrix, DenseVcAllocator, SpecAllocResult, SpecMode,
    SpeculativeSwitchAllocator, SwitchAllocatorKind, SwitchGrant, SwitchRequests, VcAllocSpec,
    VcAllocator, VcRequest,
};
use proptest::prelude::*;

/// Drives kernel and reference allocators of `kind` through `rounds`
/// identical allocation rounds of `requests`, returning the first round
/// whose grant matrices differ.
fn first_mismatch(kind: AllocatorKind, requests: &BitMatrix, rounds: usize) -> Option<usize> {
    let (r, c) = (requests.num_rows(), requests.num_cols());
    let mut kernel = kind.build(r, c);
    let mut reference = kind.build_reference(r, c);
    (0..rounds).find(|_| kernel.allocate(requests) != reference.allocate(requests))
}

/// Exhaustive differential sweep: every request matrix with `r * c` entry
/// bits, three rounds per matrix so rotated priorities are compared too.
fn exhaustive_dims(kind: AllocatorKind, r: usize, c: usize) {
    for pattern in 0u32..1 << (r * c) {
        let requests = BitMatrix::from_entries(
            r,
            c,
            (0..r * c)
                .filter(|i| pattern >> i & 1 != 0)
                .map(|i| (i / c, i % c)),
        );
        if let Some(round) = first_mismatch(kind, &requests, 3) {
            panic!(
                "{}: kernel and reference grants diverge at round {round} on {r}x{c} \
                 pattern {pattern:#x}:\n{requests:?}",
                kind.label()
            );
        }
    }
}

#[test]
fn exhaustive_small_matrices_all_variants() {
    for kind in AllocatorKind::COST_FIGURE_KINDS {
        for r in 1..=4 {
            for c in 1..=4 {
                exhaustive_dims(kind, r, c);
            }
        }
    }
}

/// A full multi-round sequence of *distinct* matrices: priority state
/// carried across rounds must evolve identically on both sides.
fn sequence_matches(kind: AllocatorKind, seq: &[BitMatrix]) -> bool {
    let Some(first) = seq.first() else {
        return true;
    };
    let (r, c) = (first.num_rows(), first.num_cols());
    let mut kernel = kind.build(r, c);
    let mut reference = kind.build_reference(r, c);
    seq.iter()
        .all(|m| kernel.allocate(m) == reference.allocate(m))
}

fn bits_to_matrix(bits: &[Vec<bool>]) -> BitMatrix {
    let r = bits.len();
    let c = bits.first().map_or(0, Vec::len);
    BitMatrix::from_entries(
        r,
        c,
        (0..r).flat_map(|i| (0..c).filter_map(move |j| bits[i][j].then_some((i, j)))),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Random larger matrices (5×5–16×16), one matrix repeated across
    // rounds. On failure the matrix is minimized with the proptest shim's
    // matrix minimizer before being reported.
    #[test]
    fn random_large_matrices_all_variants(
        (r, c) in (5usize..=16, 5usize..=16),
        density in 0.05f64..0.9,
        seed in proptest::num::u64::ANY,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let bits: Vec<Vec<bool>> =
            (0..r).map(|_| (0..c).map(|_| rng.gen_bool(density)).collect()).collect();
        for kind in AllocatorKind::COST_FIGURE_KINDS {
            let fails = |b: &[Vec<bool>]| first_mismatch(kind, &bits_to_matrix(b), 5).is_some();
            if fails(&bits) {
                let min = proptest::minimize::matrix(bits.clone(), fails);
                panic!(
                    "{}: kernel and reference grants diverge on {r}x{c}; minimized \
                     counterexample:\n{}",
                    kind.label(),
                    proptest::minimize::render(&min)
                );
            }
        }
    }

    // Random multi-round sequences of *different* matrices, so divergent
    // priority updates in early rounds surface later.
    #[test]
    fn random_round_sequences_all_variants(
        (r, c) in (5usize..=12, 5usize..=12),
        rounds in 2usize..=10,
        density in 0.1f64..0.8,
        seed in proptest::num::u64::ANY,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let seq: Vec<BitMatrix> = (0..rounds)
            .map(|_| {
                BitMatrix::from_entries(r, c, (0..r).flat_map(|i| {
                    (0..c).filter(|_| rng.gen_bool(density)).map(move |j| (i, j)).collect::<Vec<_>>()
                }))
            })
            .collect();
        for kind in AllocatorKind::COST_FIGURE_KINDS {
            prop_assert!(
                sequence_matches(kind, &seq),
                "{}: diverged on a {rounds}-round {r}x{c} sequence (seed {seed})",
                kind.label()
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Switch allocation
// ---------------------------------------------------------------------------

const SWITCH_KINDS: [SwitchAllocatorKind; 5] = [
    SwitchAllocatorKind::SepIf(noc_arbiter::ArbiterKind::RoundRobin),
    SwitchAllocatorKind::SepIf(noc_arbiter::ArbiterKind::Matrix),
    SwitchAllocatorKind::SepOf(noc_arbiter::ArbiterKind::RoundRobin),
    SwitchAllocatorKind::SepOf(noc_arbiter::ArbiterKind::Matrix),
    SwitchAllocatorKind::Wavefront,
];

fn sorted(mut grants: Vec<SwitchGrant>) -> Vec<SwitchGrant> {
    grants.sort_by_key(|g| (g.in_port, g.vc, g.out_port));
    grants
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Switch allocators: kernel vs scalar reference over random per-VC
    // request matrices, multi-round.
    #[test]
    fn switch_allocators_match_reference(
        (ports, vcs) in (2usize..=8, 1usize..=6),
        rounds in 1usize..=8,
        density in 0.05f64..0.9,
        seed in proptest::num::u64::ANY,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut streams: Vec<SwitchRequests> = Vec::new();
        for _ in 0..rounds {
            let mut reqs = SwitchRequests::new(ports, vcs);
            for p in 0..ports {
                for v in 0..vcs {
                    if rng.gen_bool(density) {
                        reqs.request(p, v, rng.gen_range(0..ports));
                    }
                }
            }
            streams.push(reqs);
        }
        for kind in SWITCH_KINDS {
            let mut kernel = kind.build(ports, vcs);
            let mut reference = kind.build_reference(ports, vcs);
            for (round, reqs) in streams.iter().enumerate() {
                let kg = sorted(kernel.allocate(reqs));
                let rg = sorted(reference.allocate(reqs));
                prop_assert_eq!(
                    &kg, &rg,
                    "{:?}: switch grants diverge at round {} ({}p, {}v, seed {})",
                    kind, round, ports, vcs, seed
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// VC allocation (sparse free-VC masks, class legality)
// ---------------------------------------------------------------------------

/// Random legal VC-allocation workload for `spec`: per input VC an optional
/// request to a random port with a random legal successor class, plus a
/// sparse random free-VC mask.
fn random_vc_workload(
    spec: &VcAllocSpec,
    rng: &mut impl rand::Rng,
    req_rate: f64,
    free_rate: f64,
) -> (Vec<Option<VcRequest>>, BitMatrix) {
    let v = spec.total_vcs();
    let n = spec.ports() * v;
    let reqs: Vec<Option<VcRequest>> = (0..n)
        .map(|g| {
            rng.gen_bool(req_rate).then(|| {
                let (_, ir, _) = spec.vc_class(g % v);
                let succ = spec.rc_successors(ir);
                let class = succ[rng.gen_range(0..succ.len())];
                VcRequest::one_class(rng.gen_range(0..spec.ports()), class)
            })
        })
        .collect();
    let mut free = BitMatrix::new(spec.ports(), v);
    for p in 0..spec.ports() {
        for vc in 0..v {
            if rng.gen_bool(free_rate) {
                free.set(p, vc, true);
            }
        }
    }
    (reqs, free)
}

#[test]
fn vc_allocators_match_reference_under_sparse_masks() {
    use rand::SeedableRng;
    let specs = [
        VcAllocSpec::mesh(1),
        VcAllocSpec::mesh(2),
        VcAllocSpec::mesh(4),
        VcAllocSpec::torus(2),
        VcAllocSpec::fbfly(1),
        // P*V = 80 > 64: both sides take the scalar path — kept in the
        // sweep so the wide-instance fallback stays covered.
        VcAllocSpec::fbfly(2),
    ];
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x5eed);
    for spec in specs {
        for kind in AllocatorKind::COST_FIGURE_KINDS {
            let mut kernel = DenseVcAllocator::new(spec.clone(), kind);
            let mut reference = DenseVcAllocator::new_reference(spec.clone(), kind);
            // Sparse masks: sweep the free-VC density from nearly-empty to
            // nearly-full while priority state carries across rounds.
            for round in 0..40 {
                let free_rate = 0.1 + 0.8 * (round as f64 / 39.0);
                let (reqs, free) = random_vc_workload(&spec, &mut rng, 0.6, free_rate);
                let kg = kernel.allocate(&reqs, &free);
                let rg = reference.allocate(&reqs, &free);
                assert_eq!(
                    kg,
                    rg,
                    "{}: VC grants diverge at round {round} (spec {}p x {}v)",
                    kind.label(),
                    spec.ports(),
                    spec.total_vcs()
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Speculative / non-speculative interaction
// ---------------------------------------------------------------------------

fn sorted_result(mut r: SpecAllocResult) -> SpecAllocResult {
    r.nonspec.sort_by_key(|g| (g.in_port, g.vc, g.out_port));
    r.spec.sort_by_key(|g| (g.in_port, g.vc, g.out_port));
    r.masked.sort_by_key(|g| (g.in_port, g.vc, g.out_port));
    r
}

#[test]
fn speculative_allocation_matches_reference_for_every_mode() {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x9c0de);
    for mode in SpecMode::ALL {
        for kind in SWITCH_KINDS {
            let (ports, vcs) = (5, 4);
            let mut kernel = SpeculativeSwitchAllocator::new(kind, ports, vcs, mode);
            let mut reference = SpeculativeSwitchAllocator::new_reference(kind, ports, vcs, mode);
            for round in 0..60 {
                let mut draw = |rate: f64| {
                    let mut reqs = SwitchRequests::new(ports, vcs);
                    for p in 0..ports {
                        for v in 0..vcs {
                            if rng.gen_bool(rate) {
                                reqs.request(p, v, rng.gen_range(0..ports));
                            }
                        }
                    }
                    reqs
                };
                let ns = draw(0.35);
                let sp = draw(0.35);
                let kr = sorted_result(kernel.allocate(&ns, &sp));
                let rr = sorted_result(reference.allocate(&ns, &sp));
                assert_eq!(
                    (&kr.nonspec, &kr.spec, &kr.masked),
                    (&rr.nonspec, &rr.spec, &rr.masked),
                    "{mode:?}/{kind:?}: speculative allocation diverges at round {round}"
                );
            }
        }
    }
}
