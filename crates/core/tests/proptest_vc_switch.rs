//! Property-based tests for VC and switch allocation invariants.

use noc_core::{
    validate_switch_grants, validate_vc_grants, AllocatorKind, BitMatrix, DenseVcAllocator,
    SparseVcAllocator, SpecMode, SpeculativeSwitchAllocator, SwitchAllocatorKind, SwitchRequests,
    VcAllocSpec, VcAllocator, VcRequest,
};
use proptest::prelude::*;

/// Strategy: a VC spec drawn from the paper's families with small ports.
fn spec_strategy() -> impl Strategy<Value = VcAllocSpec> {
    (2usize..=5, 1usize..=2, prop::bool::ANY).prop_map(|(ports, c, fb)| {
        if fb {
            VcAllocSpec::fbfly(c).with_ports(ports)
        } else {
            VcAllocSpec::mesh(c).with_ports(ports)
        }
    })
}

/// Strategy: a workload for a given spec — per input VC an optional
/// (port, class) request plus an availability mask.
fn workload(
    spec: VcAllocSpec,
) -> impl Strategy<Value = (VcAllocSpec, Vec<Option<VcRequest>>, BitMatrix)> {
    let v = spec.total_vcs();
    let n = spec.ports() * v;
    let ports = spec.ports();
    let spec2 = spec.clone();
    (
        proptest::collection::vec(proptest::option::of((0..ports, proptest::num::u8::ANY)), n),
        proptest::collection::vec(proptest::bool::ANY, ports * v),
    )
        .prop_map(move |(raw, free_bits)| {
            let reqs: Vec<Option<VcRequest>> = raw
                .iter()
                .enumerate()
                .map(|(g, r)| {
                    r.map(|(port, class_pick)| {
                        let (_, ir, _) = spec2.vc_class(g % v);
                        let succ = spec2.rc_successors(ir);
                        let class = succ[class_pick as usize % succ.len()];
                        VcRequest::one_class(port, class)
                    })
                })
                .collect();
            let mut free = BitMatrix::new(ports, v);
            for p in 0..ports {
                for vc in 0..v {
                    if free_bits[p * v + vc] {
                        free.set(p, vc, true);
                    }
                }
            }
            (spec2.clone(), reqs, free)
        })
}

fn vc_workload() -> impl Strategy<Value = (VcAllocSpec, Vec<Option<VcRequest>>, BitMatrix)> {
    spec_strategy().prop_flat_map(workload)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dense_vc_grants_always_valid((spec, reqs, free) in vc_workload()) {
        for kind in AllocatorKind::QUALITY_FIGURE_KINDS {
            let mut a = DenseVcAllocator::new(spec.clone(), kind);
            let g = a.allocate(&reqs, &free);
            prop_assert!(validate_vc_grants(&spec, &reqs, &free, &g).is_ok(), "{kind:?}");
        }
    }

    #[test]
    fn sparse_vc_grants_always_valid((spec, reqs, free) in vc_workload()) {
        for kind in AllocatorKind::QUALITY_FIGURE_KINDS {
            let mut a = SparseVcAllocator::new(spec.clone(), kind);
            let g = a.allocate(&reqs, &free);
            prop_assert!(validate_vc_grants(&spec, &reqs, &free, &g).is_ok(), "{kind:?}");
        }
    }

    #[test]
    fn sparse_and_dense_grant_counts_match_exactly((spec, reqs, free) in vc_workload()) {
        // Message classes are independent, so splitting the allocator per
        // class must not change behaviour (grant-for-grant) for the
        // separable architectures whose arbiters see identical orderings.
        for kind in [AllocatorKind::SepIfRr, AllocatorKind::SepOfRr, AllocatorKind::MaxSize] {
            let mut d = DenseVcAllocator::new(spec.clone(), kind);
            let mut s = SparseVcAllocator::new(spec.clone(), kind);
            let gd = d.allocate(&reqs, &free);
            let gs = s.allocate(&reqs, &free);
            let nd = gd.iter().filter(|g| g.is_some()).count();
            let ns = gs.iter().filter(|g| g.is_some()).count();
            prop_assert_eq!(nd, ns, "{:?}", kind);
        }
    }

    #[test]
    fn wavefront_vc_allocation_is_maximum((spec, reqs, free) in vc_workload()) {
        // §4.3.2: with class-granular requests, maximal = maximum, so the
        // wavefront grant count must equal the MaxSize count.
        let mut wf = DenseVcAllocator::new(spec.clone(), AllocatorKind::Wavefront);
        let mut ms = DenseVcAllocator::new(spec.clone(), AllocatorKind::MaxSize);
        let nw = wf.allocate(&reqs, &free).iter().filter(|g| g.is_some()).count();
        let nm = ms.allocate(&reqs, &free).iter().filter(|g| g.is_some()).count();
        prop_assert_eq!(nw, nm);
    }

    #[test]
    fn switch_grants_always_valid(
        ports in 2usize..7,
        vcs in 1usize..5,
        raw in proptest::collection::vec(proptest::option::of(proptest::num::u8::ANY), 42)
    ) {
        use noc_arbiter::ArbiterKind::{Matrix, RoundRobin};
        let mut reqs = SwitchRequests::new(ports, vcs);
        for i in 0..ports {
            for v in 0..vcs {
                if let Some(Some(o)) = raw.get(i * vcs + v) {
                    reqs.request(i, v, *o as usize % ports);
                }
            }
        }
        for kind in [
            SwitchAllocatorKind::SepIf(RoundRobin),
            SwitchAllocatorKind::SepIf(Matrix),
            SwitchAllocatorKind::SepOf(RoundRobin),
            SwitchAllocatorKind::Wavefront,
        ] {
            let mut a = kind.build(ports, vcs);
            let g = a.allocate(&reqs);
            prop_assert!(validate_switch_grants(&reqs, &g).is_ok(), "{kind:?}");
        }
    }

    #[test]
    fn speculative_composition_is_conflict_free(
        ports in 2usize..6,
        vcs in 1usize..4,
        raw_ns in proptest::collection::vec(proptest::option::of(proptest::num::u8::ANY), 24),
        raw_sp in proptest::collection::vec(proptest::option::of(proptest::num::u8::ANY), 24)
    ) {
        use noc_arbiter::ArbiterKind::RoundRobin;
        let build = |raw: &[Option<u8>]| {
            let mut reqs = SwitchRequests::new(ports, vcs);
            for i in 0..ports {
                for v in 0..vcs {
                    if let Some(Some(o)) = raw.get(i * vcs + v) {
                        reqs.request(i, v, *o as usize % ports);
                    }
                }
            }
            reqs
        };
        let ns = build(&raw_ns);
        let sp = build(&raw_sp);
        for mode in [SpecMode::Conventional, SpecMode::Pessimistic] {
            let mut a = SpeculativeSwitchAllocator::new(
                SwitchAllocatorKind::SepIf(RoundRobin), ports, vcs, mode,
            );
            let res = a.allocate(&ns, &sp);
            // The union of nonspec grants and surviving spec grants must
            // itself satisfy the one-per-input / one-per-output rule.
            let mut in_used = vec![false; ports];
            let mut out_used = vec![false; ports];
            for g in res.nonspec.iter().chain(&res.spec) {
                prop_assert!(!std::mem::replace(&mut in_used[g.in_port], true), "{mode:?}");
                prop_assert!(!std::mem::replace(&mut out_used[g.out_port], true), "{mode:?}");
            }
        }
    }
}
