//! Differential property tests for the scratch-buffer allocator paths.
//!
//! Every allocator exposes two entry points: `allocate`, which returns a
//! freshly allocated grant vector, and `allocate_into`, which reuses
//! caller-provided scratch buffers (the router hot path — zero heap
//! allocation per cycle). The two must be *grant-for-grant identical*,
//! including across multi-round sequences where the scratch buffers carry
//! stale contents from earlier rounds and the allocators carry priority
//! state. Each comparison therefore feeds the same request sequence to two
//! fresh instances of the same architecture — one per path — so priority
//! updates evolve independently and any divergence compounds visibly.

use noc_core::{
    AllocatorKind, BitMatrix, DenseVcAllocator, OutVc, SparseVcAllocator, SpecAllocResult,
    SpecMode, SpeculativeSwitchAllocator, SwitchAllocatorKind, SwitchRequests, VcAllocSpec,
    VcAllocator, VcRequest,
};
use proptest::prelude::*;

/// The five paper allocator variants (§5): separable input-/output-first
/// with round-robin or matrix arbiters, and wavefront.
const VC_KINDS: [AllocatorKind; 5] = [
    AllocatorKind::SepIfRr,
    AllocatorKind::SepIfMatrix,
    AllocatorKind::SepOfRr,
    AllocatorKind::SepOfMatrix,
    AllocatorKind::Wavefront,
];

fn sw_kinds() -> [SwitchAllocatorKind; 5] {
    use noc_arbiter::ArbiterKind::{Matrix, RoundRobin};
    [
        SwitchAllocatorKind::SepIf(RoundRobin),
        SwitchAllocatorKind::SepIf(Matrix),
        SwitchAllocatorKind::SepOf(RoundRobin),
        SwitchAllocatorKind::SepOf(Matrix),
        SwitchAllocatorKind::Wavefront,
    ]
}

/// Strategy: a VC spec drawn from the paper's families with small ports.
fn spec_strategy() -> impl Strategy<Value = VcAllocSpec> {
    (2usize..=5, 1usize..=2, prop::bool::ANY).prop_map(|(ports, c, fb)| {
        if fb {
            VcAllocSpec::fbfly(c).with_ports(ports)
        } else {
            VcAllocSpec::mesh(c).with_ports(ports)
        }
    })
}

/// Strategy: one VC-allocation round for `spec` — legal per-VC requests
/// plus a free-VC mask.
fn vc_round(spec: VcAllocSpec) -> impl Strategy<Value = (Vec<Option<VcRequest>>, BitMatrix)> {
    let v = spec.total_vcs();
    let ports = spec.ports();
    let n = ports * v;
    (
        proptest::collection::vec(proptest::option::of((0..ports, proptest::num::u8::ANY)), n),
        proptest::collection::vec(proptest::bool::ANY, n),
    )
        .prop_map(move |(raw, free_bits)| {
            let reqs: Vec<Option<VcRequest>> = raw
                .iter()
                .enumerate()
                .map(|(g, r)| {
                    r.map(|(port, class_pick)| {
                        let (_, ir, _) = spec.vc_class(g % v);
                        let succ = spec.rc_successors(ir);
                        let class = succ[class_pick as usize % succ.len()];
                        VcRequest::one_class(port, class)
                    })
                })
                .collect();
            let mut free = BitMatrix::new(ports, v);
            for p in 0..ports {
                for vc in 0..v {
                    if free_bits[p * v + vc] {
                        free.set(p, vc, true);
                    }
                }
            }
            (reqs, free)
        })
}

/// Strategy: a spec plus a short sequence of rounds against it.
#[allow(clippy::type_complexity)]
fn vc_sequence() -> impl Strategy<Value = (VcAllocSpec, Vec<(Vec<Option<VcRequest>>, BitMatrix)>)> {
    spec_strategy().prop_flat_map(|spec| {
        let rounds = proptest::collection::vec(vc_round(spec.clone()), 1..5);
        rounds.prop_map(move |rs| (spec.clone(), rs))
    })
}

/// Builds a switch-request matrix from raw bytes.
fn sw_requests(ports: usize, vcs: usize, raw: &[Option<u8>]) -> SwitchRequests {
    let mut reqs = SwitchRequests::new(ports, vcs);
    for i in 0..ports {
        for v in 0..vcs {
            if let Some(Some(o)) = raw.get(i * vcs + v) {
                reqs.request(i, v, *o as usize % ports);
            }
        }
    }
    reqs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    // Sparse VC allocator: `allocate` builds fresh sub-allocator inputs
    // every call (the reference), `allocate_into` recycles request and
    // grant pools across calls. Same grants, every round, all variants.
    #[test]
    fn sparse_vc_scratch_path_matches_fresh_path((spec, rounds) in vc_sequence()) {
        for kind in VC_KINDS {
            let mut fresh = SparseVcAllocator::new(spec.clone(), kind);
            let mut scratch = SparseVcAllocator::new(spec.clone(), kind);
            let mut out: Vec<Option<OutVc>> = Vec::new();
            for (round, (reqs, free)) in rounds.iter().enumerate() {
                let a = fresh.allocate(reqs, free);
                scratch.allocate_into(reqs, free, &mut out);
                prop_assert_eq!(&a, &out, "{:?} round {}", kind, round);
            }
        }
    }

    // Dense organization: same contract, same variants.
    #[test]
    fn dense_vc_scratch_path_matches_fresh_path((spec, rounds) in vc_sequence()) {
        for kind in VC_KINDS {
            let mut fresh = DenseVcAllocator::new(spec.clone(), kind);
            let mut scratch = DenseVcAllocator::new(spec.clone(), kind);
            let mut out: Vec<Option<OutVc>> = Vec::new();
            for (round, (reqs, free)) in rounds.iter().enumerate() {
                let a = fresh.allocate(reqs, free);
                scratch.allocate_into(reqs, free, &mut out);
                prop_assert_eq!(&a, &out, "{:?} round {}", kind, round);
            }
        }
    }

    // Switch allocators: the returned grant list must match the
    // buffer-reusing path exactly, for all five variants, across rounds
    // (round-robin and matrix priorities update between rounds).
    #[test]
    fn switch_scratch_path_matches_fresh_path(
        ports in 2usize..7,
        vcs in 1usize..5,
        raw_rounds in proptest::collection::vec(
            proptest::collection::vec(proptest::option::of(proptest::num::u8::ANY), 42), 1..5)
    ) {
        for kind in sw_kinds() {
            let mut fresh = kind.build(ports, vcs);
            let mut scratch = kind.build(ports, vcs);
            let mut out = Vec::new();
            for (round, raw) in raw_rounds.iter().enumerate() {
                let reqs = sw_requests(ports, vcs, raw);
                let a = fresh.allocate(&reqs);
                scratch.allocate_into(&reqs, &mut out);
                prop_assert_eq!(&a, &out, "{:?} round {}", kind, round);
            }
        }
    }

    // The speculative composition wrapper: nonspec grants, surviving
    // spec grants and masked grants must all match between the fresh and
    // the scratch ([`SpecAllocResult`] reuse) paths.
    #[test]
    fn speculative_scratch_path_matches_fresh_path(
        ports in 2usize..6,
        vcs in 1usize..4,
        raw_rounds in proptest::collection::vec(
            (proptest::collection::vec(proptest::option::of(proptest::num::u8::ANY), 24),
             proptest::collection::vec(proptest::option::of(proptest::num::u8::ANY), 24)),
            1..4)
    ) {
        use noc_arbiter::ArbiterKind::RoundRobin;
        for mode in [SpecMode::NonSpeculative, SpecMode::Conventional, SpecMode::Pessimistic] {
            let mut fresh = SpeculativeSwitchAllocator::new(
                SwitchAllocatorKind::SepIf(RoundRobin), ports, vcs, mode,
            );
            let mut scratch = SpeculativeSwitchAllocator::new(
                SwitchAllocatorKind::SepIf(RoundRobin), ports, vcs, mode,
            );
            let mut out = SpecAllocResult::default();
            for (round, (raw_ns, raw_sp)) in raw_rounds.iter().enumerate() {
                let ns = sw_requests(ports, vcs, raw_ns);
                let sp = sw_requests(ports, vcs, raw_sp);
                let a = fresh.allocate(&ns, &sp);
                scratch.allocate_into(&ns, &sp, &mut out);
                prop_assert_eq!(&a.nonspec, &out.nonspec, "{:?} round {} nonspec", mode, round);
                prop_assert_eq!(&a.spec, &out.spec, "{:?} round {} spec", mode, round);
                prop_assert_eq!(&a.masked, &out.masked, "{:?} round {} masked", mode, round);
            }
        }
    }
}
