//! Wavefront allocator (§2.2).

use crate::{Allocator, BitMatrix};
use noc_arbiter::bits::{rotl_width, width_mask};

/// Wavefront allocator (`wf`), after Tamir & Chi's wrapped wavefront
/// arbiter.
///
/// Conceptually an `n × n` tile array: starting from a priority diagonal,
/// all requests on the diagonal are granted (they can never conflict — a
/// diagonal touches each row and column exactly once), grants kill the
/// remaining requests in their row and column, and the wave proceeds to the
/// next diagonal until all `n` diagonals have been serviced.
///
/// Because rows and columns are considered simultaneously, the result is
/// always a *maximal* matching (asserted by the tests and relied upon in
/// §4.3.2/§5.3.2), though not necessarily maximum. Weak fairness comes from
/// rotating the starting diagonal on every invocation; no stronger guarantee
/// is provided, exactly as the paper notes.
///
/// Rectangular `R × C` instances are handled by embedding into the square
/// `max(R, C)` array, matching how the hardware would tie off unused rows or
/// columns.
pub struct WavefrontAllocator {
    requesters: usize,
    resources: usize,
    /// Side of the square tile array.
    n: usize,
    /// Currently active priority diagonal.
    diagonal: usize,
    policy: DiagonalPolicy,
}

/// Priority-diagonal update policy — the rotating policy is the paper's
/// (weakly fair); the fixed policy exists for the fairness ablation and
/// deliberately starves off-diagonal requesters under persistent load.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiagonalPolicy {
    /// Advance the starting diagonal on every allocation (§2.2).
    Rotating,
    /// Keep a fixed starting diagonal (no fairness guarantee at all).
    Fixed,
}

impl WavefrontAllocator {
    /// Creates a wavefront allocator for `requesters × resources` with the
    /// paper's rotating-diagonal policy.
    pub fn new(requesters: usize, resources: usize) -> Self {
        Self::with_policy(requesters, resources, DiagonalPolicy::Rotating)
    }

    /// Creates a wavefront allocator with an explicit diagonal policy.
    pub fn with_policy(requesters: usize, resources: usize, policy: DiagonalPolicy) -> Self {
        assert!(requesters > 0 && resources > 0);
        WavefrontAllocator {
            requesters,
            resources,
            n: requesters.max(resources),
            diagonal: 0,
            policy,
        }
    }

    /// The diagonal that will have top priority on the next allocation.
    pub fn current_diagonal(&self) -> usize {
        self.diagonal
    }

    /// Allocates with an explicit priority diagonal and no state update.
    /// This is the pure function the per-diagonal replicated hardware
    /// implementation computes; [`Allocator::allocate`] selects among the
    /// `n` replicas with the rotating state.
    pub fn allocate_with_diagonal(&self, requests: &BitMatrix, start: usize) -> BitMatrix {
        let mut grants = BitMatrix::new(self.requesters, self.resources);
        self.allocate_with_diagonal_into(requests, start, &mut grants);
        grants
    }

    /// [`WavefrontAllocator::allocate_with_diagonal`] into a caller-owned
    /// grant matrix, so a per-cycle caller can keep one scratch matrix and
    /// never allocate (`Bits` tracks free rows/columns inline).
    pub fn allocate_with_diagonal_into(
        &self,
        requests: &BitMatrix,
        start: usize,
        grants: &mut BitMatrix,
    ) {
        assert_eq!(requests.num_rows(), self.requesters);
        assert_eq!(requests.num_cols(), self.resources);
        assert_eq!(grants.num_rows(), self.requesters);
        assert_eq!(grants.num_cols(), self.resources);
        grants.clear();
        if self.n <= 64 {
            self.kernel_with_diagonal_into(requests, start, grants);
        } else {
            reference::wavefront_with_diagonal_into(
                self.requesters,
                self.resources,
                requests,
                start,
                grants,
            );
        }
    }

    /// The `u64` diagonal-propagation kernel (`n <= 64`).
    ///
    /// Rotating row `i` of the request matrix left by `i` (mod `n`) moves
    /// bit `j` to position `(i + j) mod n` — the index of the wrapped
    /// diagonal through `(i, j)`. Scattering the rotated rows into per-
    /// diagonal *row masks* (`diag[d]` bit `i` set iff requester `i` has a
    /// request on diagonal `d`) turns the wavefront sweep into: for each
    /// diagonal from `start`, take `diag[d] & row_free`, pop rows in ctz
    /// order, and grant where the implied column is still free. Entries on
    /// one diagonal touch each row and column at most once, so the pop
    /// order within a diagonal cannot change the outcome — the grant set is
    /// identical to the scalar reference sweep, which the differential
    /// suite asserts exhaustively.
    fn kernel_with_diagonal_into(
        &self,
        requests: &BitMatrix,
        start: usize,
        grants: &mut BitMatrix,
    ) {
        let n = self.n;
        let mut diag = [0u64; 64];
        for i in 0..self.requesters {
            let mut r = rotl_width(requests.row(i).low_word(), i, n);
            while r != 0 {
                let d = r.trailing_zeros() as usize;
                r &= r - 1;
                diag[d] |= 1 << i;
            }
        }
        let mut row_free = width_mask(self.requesters);
        let mut col_free = width_mask(self.resources);
        for k in 0..n {
            if row_free == 0 || col_free == 0 {
                break;
            }
            let d = (start + k) % n;
            let mut cand = diag[d] & row_free;
            while cand != 0 && col_free != 0 {
                let i = cand.trailing_zeros() as usize;
                cand &= cand - 1;
                // Bits in `diag` come only from real requests, so `j` is
                // always a legal column (< resources).
                let j = (d + n - i) % n;
                if col_free >> j & 1 != 0 {
                    grants.set(i, j, true);
                    row_free &= !(1u64 << i);
                    col_free &= !(1u64 << j);
                }
            }
        }
    }

    /// [`Allocator::allocate`] into a caller-owned grant matrix (advances
    /// the rotating diagonal exactly like `allocate`).
    pub fn allocate_into(&mut self, requests: &BitMatrix, grants: &mut BitMatrix) {
        self.allocate_with_diagonal_into(requests, self.diagonal, grants);
        if self.policy == DiagonalPolicy::Rotating {
            self.diagonal = (self.diagonal + 1) % self.n;
        }
    }
}

impl Allocator for WavefrontAllocator {
    fn num_requesters(&self) -> usize {
        self.requesters
    }

    fn num_resources(&self) -> usize {
        self.resources
    }

    fn allocate(&mut self, requests: &BitMatrix) -> BitMatrix {
        let g = self.allocate_with_diagonal(requests, self.diagonal);
        if self.policy == DiagonalPolicy::Rotating {
            self.diagonal = (self.diagonal + 1) % self.n;
        }
        g
    }

    fn allocate_into(&mut self, requests: &BitMatrix, grants: &mut BitMatrix) {
        WavefrontAllocator::allocate_into(self, requests, grants);
    }

    fn reset(&mut self) {
        self.diagonal = 0;
    }
}

/// The scalar predecessor of the bit kernel, kept alive so the two can be
/// driven differentially (and as the only path for `n > 64` arrays, which
/// exceed the kernel word).
pub mod reference {
    use crate::{Allocator, BitMatrix};
    use noc_arbiter::Bits;

    /// Scalar wavefront sweep: walk diagonals from `start`, visiting rows
    /// in index order within each diagonal, granting where both the row and
    /// the implied column are still free.
    pub fn wavefront_with_diagonal_into(
        requesters: usize,
        resources: usize,
        requests: &BitMatrix,
        start: usize,
        grants: &mut BitMatrix,
    ) {
        let n = requesters.max(resources);
        let mut row_free = Bits::ones(n);
        let mut col_free = Bits::ones(n);
        for k in 0..n {
            let d = (start + k) % n;
            // Entries (i, j) with (i + j) mod n == d.
            for i in 0..requesters {
                let j = (d + n - i % n) % n;
                if j < resources && row_free.get(i) && col_free.get(j) && requests.get(i, j) {
                    grants.set(i, j, true);
                    row_free.set(i, false);
                    col_free.set(j, false);
                }
            }
        }
    }

    /// Scalar wavefront allocator: identical rotating-diagonal state to the
    /// kernel-backed [`super::WavefrontAllocator`], scalar sweep inside.
    pub struct WavefrontAllocator {
        requesters: usize,
        resources: usize,
        n: usize,
        diagonal: usize,
        policy: super::DiagonalPolicy,
    }

    impl WavefrontAllocator {
        /// Scalar counterpart of [`super::WavefrontAllocator::new`].
        pub fn new(requesters: usize, resources: usize) -> Self {
            Self::with_policy(requesters, resources, super::DiagonalPolicy::Rotating)
        }

        /// Scalar counterpart of [`super::WavefrontAllocator::with_policy`].
        pub fn with_policy(
            requesters: usize,
            resources: usize,
            policy: super::DiagonalPolicy,
        ) -> Self {
            assert!(requesters > 0 && resources > 0);
            WavefrontAllocator {
                requesters,
                resources,
                n: requesters.max(resources),
                diagonal: 0,
                policy,
            }
        }
    }

    impl Allocator for WavefrontAllocator {
        fn num_requesters(&self) -> usize {
            self.requesters
        }

        fn num_resources(&self) -> usize {
            self.resources
        }

        fn allocate(&mut self, requests: &BitMatrix) -> BitMatrix {
            let mut grants = BitMatrix::new(self.requesters, self.resources);
            self.allocate_into(requests, &mut grants);
            grants
        }

        fn allocate_into(&mut self, requests: &BitMatrix, grants: &mut BitMatrix) {
            grants.clear();
            wavefront_with_diagonal_into(
                self.requesters,
                self.resources,
                requests,
                self.diagonal,
                grants,
            );
            if self.policy == super::DiagonalPolicy::Rotating {
                self.diagonal = (self.diagonal + 1) % self.n;
            }
        }

        fn reset(&mut self) {
            self.diagonal = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn random_matrix(rng: &mut impl Rng, rows: usize, cols: usize, density: f64) -> BitMatrix {
        let mut m = BitMatrix::new(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                if rng.gen_bool(density) {
                    m.set(r, c, true);
                }
            }
        }
        m
    }

    #[test]
    fn grants_are_matchings_and_maximal() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut a = WavefrontAllocator::new(8, 8);
        for _ in 0..200 {
            let req = random_matrix(&mut rng, 8, 8, 0.3);
            let g = a.allocate(&req);
            assert!(g.is_matching_for(&req), "{req:?}\n{g:?}");
            assert!(g.is_maximal_for(&req), "not maximal:\n{req:?}\n{g:?}");
        }
    }

    #[test]
    fn rectangular_maximality() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        for (r, c) in [(3, 7), (7, 3), (1, 5), (5, 1)] {
            let mut a = WavefrontAllocator::new(r, c);
            for _ in 0..100 {
                let req = random_matrix(&mut rng, r, c, 0.4);
                let g = a.allocate(&req);
                assert!(g.is_maximal_for(&req), "{r}x{c}\n{req:?}\n{g:?}");
            }
        }
    }

    #[test]
    fn full_requests_yield_perfect_matching() {
        let mut a = WavefrontAllocator::new(6, 6);
        let req = {
            let mut m = BitMatrix::new(6, 6);
            for r in 0..6 {
                for c in 0..6 {
                    m.set(r, c, true);
                }
            }
            m
        };
        let g = a.allocate(&req);
        assert_eq!(g.count_ones(), 6);
    }

    #[test]
    fn priority_diagonal_rotates() {
        let mut a = WavefrontAllocator::new(4, 4);
        assert_eq!(a.current_diagonal(), 0);
        let req = BitMatrix::from_entries(4, 4, [(0, 0)]);
        a.allocate(&req);
        assert_eq!(a.current_diagonal(), 1);
        for _ in 0..3 {
            a.allocate(&req);
        }
        assert_eq!(a.current_diagonal(), 0);
    }

    #[test]
    fn fixed_diagonal_starves_where_rotation_does_not() {
        // Ablation evidence for §2.2's fairness argument: with a fixed
        // starting diagonal and two persistent conflicting requests, one
        // requester never wins; the rotating policy serves both.
        let req = BitMatrix::from_entries(2, 2, [(0, 0), (1, 0)]);
        let mut fixed = WavefrontAllocator::with_policy(2, 2, DiagonalPolicy::Fixed);
        let mut winners = std::collections::HashSet::new();
        for _ in 0..10 {
            let g = fixed.allocate(&req);
            winners.insert(g.iter_set().next().unwrap().0);
        }
        assert_eq!(winners.len(), 1, "fixed policy should starve one input");
    }

    #[test]
    fn rotation_provides_weak_fairness() {
        // Two requesters fight for one resource; over n allocations each must
        // win at least once.
        let mut a = WavefrontAllocator::new(2, 2);
        let req = BitMatrix::from_entries(2, 2, [(0, 0), (1, 0)]);
        let mut counts = [0usize; 2];
        for _ in 0..10 {
            let g = a.allocate(&req);
            assert_eq!(g.count_ones(), 1);
            counts[g.iter_set().next().unwrap().0] += 1;
        }
        assert!(counts[0] > 0 && counts[1] > 0, "{counts:?}");
    }

    #[test]
    fn diagonal_priority_is_respected() {
        // With start diagonal d, requests on d are granted before
        // conflicting off-diagonal ones.
        let a = WavefrontAllocator::new(3, 3);
        // (0,2) lies on diagonal 2, (0,0) on diagonal 0.
        let req = BitMatrix::from_entries(3, 3, [(0, 0), (0, 2)]);
        let g0 = a.allocate_with_diagonal(&req, 0);
        assert!(g0.get(0, 0) && !g0.get(0, 2));
        let g2 = a.allocate_with_diagonal(&req, 2);
        assert!(g2.get(0, 2) && !g2.get(0, 0));
    }

    #[test]
    fn beats_or_equals_separable_on_dense_conflicts() {
        // Quantitative sanity behind §4.3.2: on dense matrices the wavefront
        // grant count is at least that of a fresh sep_if.
        use crate::AllocatorKind;
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let mut wf_total = 0usize;
        let mut sep_total = 0usize;
        let mut wf = WavefrontAllocator::new(8, 8);
        let mut sep = AllocatorKind::SepIfRr.build(8, 8);
        for _ in 0..300 {
            let req = random_matrix(&mut rng, 8, 8, 0.5);
            wf_total += wf.allocate(&req).count_ones();
            sep_total += sep.allocate(&req).count_ones();
        }
        assert!(
            wf_total >= sep_total,
            "wavefront ({wf_total}) lost to separable ({sep_total})"
        );
    }
}
