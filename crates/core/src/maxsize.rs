//! Maximum-size allocator (§2.3) — the matching-quality upper bound.

use crate::{Allocator, BitMatrix};

/// Size of a maximum bipartite matching for `requests`, via repeated
/// augmenting-path search (Ford–Fulkerson on the request graph).
///
/// This is the exact matching-quality reference of §3.1: every practical
/// allocator's per-cycle grant count is normalized against this value.
/// Besides the [`MaxSizeAllocator`], the simulator's telemetry layer calls
/// it on sampled switch-request matrices to report matching efficiency
/// over time.
pub fn max_matching(requests: &BitMatrix) -> usize {
    max_matching_assignment(requests)
        .iter()
        .filter(|m| m.is_some())
        .count()
}

/// One maximum matching of `requests`, as `match_of_col[c] = Some(r)`.
pub fn max_matching_assignment(requests: &BitMatrix) -> Vec<Option<usize>> {
    let nc = requests.num_cols();
    let mut col_match: Vec<Option<usize>> = vec![None; nc];
    let mut visited = vec![false; nc];
    for r in 0..requests.num_rows() {
        visited.iter_mut().for_each(|v| *v = false);
        augment(requests, r, &mut col_match, &mut visited);
    }
    col_match
}

fn augment(
    requests: &BitMatrix,
    r: usize,
    col_match: &mut Vec<Option<usize>>,
    visited: &mut Vec<bool>,
) -> bool {
    for c in requests.row(r).iter_set() {
        if visited[c] {
            continue;
        }
        visited[c] = true;
        let freed = match col_match[c] {
            None => true,
            Some(owner) => augment(requests, owner, col_match, visited),
        };
        if freed {
            col_match[c] = Some(r);
            return true;
        }
    }
    false
}

/// Maximum-size allocator: computes a true *maximum* bipartite matching via
/// repeated augmenting-path search (Ford–Fulkerson on the request graph,
/// §2.3's conceptual algorithm).
///
/// As the paper notes, this is not a practical single-cycle hardware design
/// — it is inherently iterative and offers no fairness guarantees (it will
/// happily starve a requester forever to maximize total grants) — but it is
/// the normalization baseline for the matching-quality metric of §3.1: every
/// other allocator's grant count is divided by this one's.
pub struct MaxSizeAllocator {
    requesters: usize,
    resources: usize,
}

impl MaxSizeAllocator {
    /// Creates a maximum-size allocator for `requesters × resources`.
    pub fn new(requesters: usize, resources: usize) -> Self {
        MaxSizeAllocator {
            requesters,
            resources,
        }
    }

    /// Size of the maximum matching for `requests`, without materializing
    /// the grant matrix. Thin wrapper over the free [`max_matching`].
    pub fn max_matching_size(requests: &BitMatrix) -> usize {
        max_matching(requests)
    }
}

impl Allocator for MaxSizeAllocator {
    fn num_requesters(&self) -> usize {
        self.requesters
    }

    fn num_resources(&self) -> usize {
        self.resources
    }

    fn allocate(&mut self, requests: &BitMatrix) -> BitMatrix {
        assert_eq!(requests.num_rows(), self.requesters);
        assert_eq!(requests.num_cols(), self.resources);
        let col_match = max_matching_assignment(requests);
        let mut grants = BitMatrix::new(self.requesters, self.resources);
        for (c, m) in col_match.iter().enumerate() {
            if let Some(r) = m {
                grants.set(*r, c, true);
            }
        }
        grants
    }

    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn brute_force_max(requests: &BitMatrix) -> usize {
        // Exhaustive search over requester subsets (rows <= ~12).
        fn go(requests: &BitMatrix, r: usize, used_cols: u64) -> usize {
            if r == requests.num_rows() {
                return 0;
            }
            let mut best = go(requests, r + 1, used_cols); // skip row r
            for c in requests.row(r).iter_set() {
                if used_cols >> c & 1 == 0 {
                    best = best.max(1 + go(requests, r + 1, used_cols | 1 << c));
                }
            }
            best
        }
        go(requests, 0, 0)
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let mut a = MaxSizeAllocator::new(7, 7);
        for _ in 0..150 {
            let mut req = BitMatrix::new(7, 7);
            for r in 0..7 {
                for c in 0..7 {
                    if rng.gen_bool(0.3) {
                        req.set(r, c, true);
                    }
                }
            }
            let g = a.allocate(&req);
            assert!(g.is_matching_for(&req));
            assert_eq!(g.count_ones(), brute_force_max(&req), "{req:?}");
        }
    }

    #[test]
    fn perfect_matching_on_permutation() {
        let mut a = MaxSizeAllocator::new(5, 5);
        let req = BitMatrix::from_entries(5, 5, (0..5).map(|i| (i, (i + 2) % 5)));
        let g = a.allocate(&req);
        assert_eq!(g, req);
    }

    #[test]
    fn handles_hard_augmenting_chain() {
        // Greedy would match (0,0) and strand requester 1; augmenting finds 2.
        let mut a = MaxSizeAllocator::new(2, 2);
        let req = BitMatrix::from_entries(2, 2, [(0, 0), (0, 1), (1, 0)]);
        let g = a.allocate(&req);
        assert_eq!(g.count_ones(), 2);
    }

    #[test]
    fn dominates_wavefront_on_random_instances() {
        use crate::wavefront::WavefrontAllocator;
        let mut rng = rand::rngs::StdRng::seed_from_u64(4242);
        let mut ms = MaxSizeAllocator::new(10, 10);
        let mut wf = WavefrontAllocator::new(10, 10);
        for _ in 0..200 {
            let mut req = BitMatrix::new(10, 10);
            for r in 0..10 {
                for c in 0..10 {
                    if rng.gen_bool(0.25) {
                        req.set(r, c, true);
                    }
                }
            }
            let gm = ms.allocate(&req).count_ones();
            let gw = wf.allocate(&req).count_ones();
            assert!(gm >= gw, "maxsize {gm} < wavefront {gw}\n{req:?}");
        }
    }

    #[test]
    fn empty_and_full() {
        let mut a = MaxSizeAllocator::new(4, 4);
        assert!(a.allocate(&BitMatrix::new(4, 4)).is_zero());
        let mut full = BitMatrix::new(4, 4);
        for r in 0..4 {
            for c in 0..4 {
                full.set(r, c, true);
            }
        }
        assert_eq!(a.allocate(&full).count_ones(), 4);
    }
}
