//! VC allocators (§4): dense and sparse implementations.
//!
//! The VC allocator matches `P*V` input VCs (requesters) to `P*V` output VCs
//! (resources), subject to the constraint that all output VCs requested by a
//! given input VC live at the single output port selected by the routing
//! function. §4.2's *sparse VC allocation* additionally exploits the static
//! structure of VC usage — the decomposition `V = M × R × C` into message
//! classes, resource classes and class banks — to shrink the allocator.

use crate::{Allocator, AllocatorKind, BitMatrix};

/// Describes how a router's VCs decompose into message classes (`M`),
/// resource classes (`R`) and VCs per class (`C`), with `V = M*R*C`
/// (§4.2), plus the legal resource-class transition relation.
///
/// VC index encoding: `vc = (msg * R + res) * C + bank`.
///
/// ```
/// use noc_core::VcAllocSpec;
///
/// // The paper's Figure 4 configuration: 96 of 256 transitions legal.
/// let spec = VcAllocSpec::fbfly(4);
/// assert_eq!(spec.total_vcs(), 16);
/// assert_eq!(spec.legal_transition_count(), 96);
/// assert_eq!(spec.label(), "2x2x4");
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VcAllocSpec {
    ports: usize,
    msg_classes: usize,
    resource_classes: usize,
    vcs_per_class: usize,
    /// `rc_succ[from][to]`: packets in resource class `from` may acquire a
    /// VC of resource class `to` at the next hop.
    rc_succ: Vec<Vec<bool>>,
}

/// Why a [`VcAllocSpec`] could not be constructed. Produced by
/// [`VcAllocSpec::try_new`]; static-analysis tooling (`noc check`) reports
/// these instead of aborting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpecError {
    /// One of the `P`/`M`/`R`/`C` dimensions is zero.
    ZeroDimension {
        /// Name of the offending dimension (`ports`, `msg_classes`, ...).
        dimension: &'static str,
    },
    /// The transition relation is not `R × R`.
    TransitionShape {
        /// Rows supplied.
        rows: usize,
        /// Columns of the first short/long row, if the row count matched.
        bad_row: Option<(usize, usize)>,
        /// Expected side length (`R`).
        expected: usize,
    },
    /// A resource class has no successor, so packets holding it could
    /// never acquire a VC at the next hop.
    DeadEndClass {
        /// The successor-less resource class.
        class: usize,
    },
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::ZeroDimension { dimension } => {
                write!(f, "spec dimension '{dimension}' must be nonzero")
            }
            SpecError::TransitionShape {
                rows,
                bad_row: Some((row, cols)),
                expected,
            } => write!(
                f,
                "rc_succ row {row} has {cols} entries, expected {expected} \
                 (relation must be {expected}x{expected}, got {rows} rows)"
            ),
            SpecError::TransitionShape { rows, expected, .. } => write!(
                f,
                "rc_succ has {rows} rows, expected {expected} \
                 (one row per resource class)"
            ),
            SpecError::DeadEndClass { class } => {
                write!(f, "resource class {class} has no successor")
            }
        }
    }
}

impl std::error::Error for SpecError {}

impl VcAllocSpec {
    /// Creates a spec with an explicit resource-class transition relation,
    /// reporting rather than panicking on invalid input: the dimensions
    /// must be nonzero, `rc_succ` must be `R × R`, and every class needs at
    /// least one successor (otherwise packets in it could never move).
    pub fn try_new(
        ports: usize,
        msg_classes: usize,
        resource_classes: usize,
        vcs_per_class: usize,
        rc_succ: Vec<Vec<bool>>,
    ) -> Result<Self, SpecError> {
        for (dimension, value) in [
            ("ports", ports),
            ("msg_classes", msg_classes),
            ("resource_classes", resource_classes),
            ("vcs_per_class", vcs_per_class),
        ] {
            if value == 0 {
                return Err(SpecError::ZeroDimension { dimension });
            }
        }
        if rc_succ.len() != resource_classes {
            return Err(SpecError::TransitionShape {
                rows: rc_succ.len(),
                bad_row: None,
                expected: resource_classes,
            });
        }
        for (from, row) in rc_succ.iter().enumerate() {
            if row.len() != resource_classes {
                return Err(SpecError::TransitionShape {
                    rows: rc_succ.len(),
                    bad_row: Some((from, row.len())),
                    expected: resource_classes,
                });
            }
            if !row.iter().any(|&b| b) {
                return Err(SpecError::DeadEndClass { class: from });
            }
        }
        Ok(VcAllocSpec {
            ports,
            msg_classes,
            resource_classes,
            vcs_per_class,
            rc_succ,
        })
    }

    /// Creates a spec with an explicit resource-class transition relation.
    ///
    /// Panicking wrapper around [`VcAllocSpec::try_new`] for call sites
    /// with statically valid configurations.
    pub fn new(
        ports: usize,
        msg_classes: usize,
        resource_classes: usize,
        vcs_per_class: usize,
        rc_succ: Vec<Vec<bool>>,
    ) -> Self {
        match Self::try_new(ports, msg_classes, resource_classes, vcs_per_class, rc_succ) {
            Ok(spec) => spec,
            Err(e) => panic!("invalid VcAllocSpec: {e}"),
        }
    }

    /// The paper's mesh design points: `M = 2` (request/reply), `R = 1`
    /// (dimension-order routing needs no resource classes), `C` VCs per
    /// class, on a `P = 5` router unless overridden.
    pub fn mesh(vcs_per_class: usize) -> Self {
        VcAllocSpec::new(5, 2, 1, vcs_per_class, vec![vec![true]])
    }

    /// The paper's flattened-butterfly design points: `M = 2`, `R = 2`
    /// (UGAL's non-minimal phase-1 class and minimal phase-2 class), `C` VCs
    /// per class, `P = 10`.
    ///
    /// Transition relation (Figure 4): non-minimal may stay non-minimal or
    /// drop to minimal (at the intermediate router); minimal must stay
    /// minimal. Class 0 is non-minimal, class 1 minimal.
    pub fn fbfly(vcs_per_class: usize) -> Self {
        VcAllocSpec::new(
            10,
            2,
            2,
            vcs_per_class,
            vec![vec![true, true], vec![false, true]],
        )
    }

    /// Torus design points (§4.2's dateline example): `M = 2`, `R = 2`
    /// (pre-/post-dateline), `C` VCs per class, `P = 5`.
    ///
    /// With dimension-order routing and a per-dimension dateline, packets
    /// move pre→post when they cross the wraparound edge and post→pre when
    /// they change dimensions, so — unlike the one-way fbfly relation —
    /// all four resource-class transitions must be supported in hardware.
    /// Sparse VC allocation then saves only the message-class split; the
    /// §4.2 resource-class restriction applies to networks whose class
    /// order is acyclic along every route (single rings, two-phase
    /// routing), not to multi-dimension datelines.
    pub fn torus(vcs_per_class: usize) -> Self {
        VcAllocSpec::new(
            5,
            2,
            2,
            vcs_per_class,
            vec![vec![true, true], vec![true, true]],
        )
    }

    /// Same class structure on a custom port count.
    pub fn with_ports(mut self, ports: usize) -> Self {
        assert!(ports > 0);
        self.ports = ports;
        self
    }

    /// Router port count `P`.
    pub fn ports(&self) -> usize {
        self.ports
    }

    /// Number of message classes `M`.
    pub fn msg_classes(&self) -> usize {
        self.msg_classes
    }

    /// Number of resource classes `R`.
    pub fn resource_classes(&self) -> usize {
        self.resource_classes
    }

    /// VCs per class `C`.
    pub fn vcs_per_class(&self) -> usize {
        self.vcs_per_class
    }

    /// Total VCs per port, `V = M*R*C`.
    pub fn total_vcs(&self) -> usize {
        self.msg_classes * self.resource_classes * self.vcs_per_class
    }

    /// Design-point label in the paper's `MxRxC` notation, e.g. `2x2x4`.
    pub fn label(&self) -> String {
        format!(
            "{}x{}x{}",
            self.msg_classes, self.resource_classes, self.vcs_per_class
        )
    }

    /// First VC index of class `(msg, res)`.
    pub fn class_base(&self, msg: usize, res: usize) -> usize {
        assert!(msg < self.msg_classes && res < self.resource_classes);
        (msg * self.resource_classes + res) * self.vcs_per_class
    }

    /// Decomposes a VC index into `(msg, res, bank)`.
    pub fn vc_class(&self, vc: usize) -> (usize, usize, usize) {
        assert!(vc < self.total_vcs());
        let bank = vc % self.vcs_per_class;
        let cls = vc / self.vcs_per_class;
        (
            cls / self.resource_classes,
            cls % self.resource_classes,
            bank,
        )
    }

    /// True if a packet holding resource class `from` may acquire class `to`
    /// next hop.
    pub fn rc_legal(&self, from: usize, to: usize) -> bool {
        self.rc_succ[from][to]
    }

    /// Successor resource classes of `from`.
    pub fn rc_successors(&self, from: usize) -> Vec<usize> {
        (0..self.resource_classes)
            .filter(|&to| self.rc_succ[from][to])
            .collect()
    }

    /// The `V × V` VC-to-VC transition matrix of Figure 4: entry
    /// `(in_vc, out_vc)` is set iff the transition is legal (same message
    /// class, successor resource class; banks unconstrained).
    pub fn transition_matrix(&self) -> BitMatrix {
        let v = self.total_vcs();
        let mut m = BitMatrix::new(v, v);
        for iv in 0..v {
            let (im, ir, _) = self.vc_class(iv);
            for ov in 0..v {
                let (om, or, _) = self.vc_class(ov);
                if im == om && self.rc_legal(ir, or) {
                    m.set(iv, ov, true);
                }
            }
        }
        m
    }

    /// Number of legal VC-to-VC transitions (the "96 of 256" count quoted
    /// for the fbfly 2×2×4 configuration in §4.2).
    pub fn legal_transition_count(&self) -> usize {
        self.transition_matrix().count_ones()
    }
}

/// One input VC's VC-allocation request: the output port chosen by routing
/// and the candidate resource classes there (message class is implied by the
/// requesting VC — packets never change message class, §4.2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VcRequest {
    /// Destination output port from the routing function.
    pub out_port: usize,
    /// Candidate resource classes at `out_port`; each must be a legal
    /// successor of the requesting VC's resource class. Per §4.2, requests
    /// are class-granular: a request covers *all* free VCs of the class.
    pub classes: Vec<usize>,
}

impl VcRequest {
    /// Request any free VC of one class at `out_port`.
    pub fn one_class(out_port: usize, class: usize) -> Self {
        VcRequest {
            out_port,
            classes: vec![class],
        }
    }
}

/// A granted output VC.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OutVc {
    /// Output port.
    pub port: usize,
    /// VC index at that port.
    pub vc: usize,
}

/// A VC allocator: matches requesting input VCs to free output VCs.
pub trait VcAllocator: Send {
    /// The class structure this allocator was built for.
    fn spec(&self) -> &VcAllocSpec;

    /// Performs one round of VC allocation.
    ///
    /// `requests[p * V + v]` is the request of input VC `v` at input port
    /// `p` (or `None` when idle); `free_out.get(p, v)` says whether output
    /// VC `v` at port `p` is currently unallocated. Returns, per input VC,
    /// the granted output VC if any.
    ///
    /// Guarantees: every grant satisfies the request (port, message class,
    /// legal class, free output VC) and no output VC is granted twice.
    fn allocate(
        &mut self,
        requests: &[Option<VcRequest>],
        free_out: &BitMatrix,
    ) -> Vec<Option<OutVc>>;

    /// Allocation round writing grants into a caller-owned buffer so hot
    /// paths can reuse capacity across cycles. Must produce exactly the
    /// grants (and priority updates) of [`VcAllocator::allocate`].
    fn allocate_into(
        &mut self,
        requests: &[Option<VcRequest>],
        free_out: &BitMatrix,
        results: &mut Vec<Option<OutVc>>,
    ) {
        results.clear();
        results.extend(self.allocate(requests, free_out));
    }

    /// Restores power-on priority state.
    fn reset(&mut self);
}

fn validate_request(spec: &VcAllocSpec, in_vc_flat: usize, req: &VcRequest) {
    assert!(req.out_port < spec.ports(), "out port out of range");
    let (_, ir, _) = spec.vc_class(in_vc_flat % spec.total_vcs());
    assert!(!req.classes.is_empty(), "request with no candidate classes");
    for &rc in &req.classes {
        assert!(
            spec.rc_legal(ir, rc),
            "illegal resource-class transition {ir} -> {rc}"
        );
    }
}

/// Computes, for input VC `g`, the candidate output VCs (as a `V`-wide mask
/// over VC indices at the destination port): free output VCs in the
/// requested classes of the input VC's own message class.
fn candidate_mask(
    spec: &VcAllocSpec,
    g: usize,
    req: &VcRequest,
    free_out: &BitMatrix,
) -> noc_arbiter::Bits {
    let v = spec.total_vcs();
    let (im, _, _) = spec.vc_class(g % v);
    let mut mask = noc_arbiter::Bits::new(v);
    for &rc in &req.classes {
        let base = spec.class_base(im, rc);
        for bank in 0..spec.vcs_per_class() {
            let ov = base + bank;
            if free_out.get(req.out_port, ov) {
                mask.set(ov, true);
            }
        }
    }
    mask
}

/// [`candidate_mask`] as a kernel word over VC indices at the destination
/// port (`V <= 64`): free output VCs in the requested classes of the input
/// VC's own message class.
#[inline]
fn candidate_word(spec: &VcAllocSpec, g: usize, req: &VcRequest, free_out: &BitMatrix) -> u64 {
    let v = spec.total_vcs();
    debug_assert!(v <= 64);
    let (im, _, _) = spec.vc_class(g % v);
    let class_ones = noc_arbiter::bits::width_mask(spec.vcs_per_class());
    let mut class_bits = 0u64;
    for &rc in &req.classes {
        class_bits |= class_ones << spec.class_base(im, rc);
    }
    free_out.row(req.out_port).low_word() & class_bits
}

/// Separable VC allocator with the exact structure of Figures 3(a)/3(b).
///
/// * **Input-first** (Figure 3(a)): each input VC's `V:1` *input arbiter*
///   picks one candidate output VC at its destination port; each output
///   VC's `P*V:1` *output arbiter* (a tree arbiter in hardware) then selects
///   a winner among the input VCs that bid on it.
/// * **Output-first** (Figure 3(b)): each output VC's `P*V:1` arbiter picks
///   a winner among *all* requesting input VCs; since an input VC may win at
///   several output VCs, a final `V:1` arbitration per input VC selects the
///   granted VC.
///
/// Priority state advances only for grants that survive both stages (§2.1).
/// The input-side arbiters are `V` wide — they choose *which VC at the
/// destination port* to use — which is what makes input-first allocation
/// propagate more distinct requests into the wide second stage than
/// output-first (§4.3.2).
///
/// Implemented as a `u64` kernel over contiguous [`noc_arbiter::ArbiterBank`]
/// / [`noc_arbiter::TreeBank`] state whenever `P*V <= 64`; the boxed-arbiter
/// scalar predecessor lives in [`reference`] and handles wider instances.
pub struct SeparableVcAllocator {
    spec: VcAllocSpec,
    input_first: bool,
    inner: SepVcInner,
}

enum SepVcInner {
    Kernel {
        /// Per input VC (`P*V` of them): `V:1` arbiter over output-VC
        /// indices at the destination port.
        input: noc_arbiter::ArbiterBank,
        /// Per output VC (`P*V` of them): `P*V:1` *tree* arbiter over input
        /// VCs — `P` `V`-input leaves plus a `P`-input root, the structure
        /// §4.1 prescribes for these wide arbiters.
        output: noc_arbiter::TreeBank,
        /// Bid accumulator: `incoming[out_flat]` bit `g` set iff input VC
        /// `g` bids on output VC `out_flat`. All-zero between calls.
        incoming: Vec<u64>,
        /// Output-first stage-1 wins per input VC: `won[g]` bit `ov` set
        /// iff output VC `ov` at `g`'s port chose `g`. All-zero between
        /// calls.
        won: Vec<u64>,
    },
    Reference(reference::SeparableVcAllocator),
}

impl SeparableVcAllocator {
    /// Builds the Figure 3 structure with the given arbiter kind.
    pub fn new(spec: VcAllocSpec, input_first: bool, kind: noc_arbiter::ArbiterKind) -> Self {
        let v = spec.total_vcs();
        let n = spec.ports() * v;
        let inner = if n <= 64 {
            SepVcInner::Kernel {
                input: noc_arbiter::ArbiterBank::new(kind, n, v),
                output: noc_arbiter::TreeBank::new(kind, n, spec.ports(), v),
                incoming: vec![0; n],
                won: vec![0; n],
            }
        } else {
            SepVcInner::Reference(reference::SeparableVcAllocator::new(
                spec.clone(),
                input_first,
                kind,
            ))
        };
        SeparableVcAllocator {
            spec,
            input_first,
            inner,
        }
    }

    fn kernel_allocate_into(
        &mut self,
        requests: &[Option<VcRequest>],
        free_out: &BitMatrix,
        results: &mut [Option<OutVc>],
    ) {
        let SepVcInner::Kernel {
            input,
            output,
            incoming,
            won,
        } = &mut self.inner
        else {
            unreachable!()
        };
        let spec = &self.spec;
        let v = spec.total_vcs();
        let n = spec.ports() * v;

        if self.input_first {
            // Stage 1: each input VC picks one output VC at its port.
            let mut pending = 0u64; // output VCs with >= 1 bid
            for (g, req) in requests.iter().enumerate() {
                let Some(req) = req else { continue };
                validate_request(spec, g, req);
                let mask = candidate_word(spec, g, req, free_out);
                if let Some(ov) = input.arbitrate(g, mask) {
                    let out_flat = req.out_port * v + ov;
                    incoming[out_flat] |= 1 << g;
                    pending |= 1 << out_flat;
                }
            }
            // Stage 2: each bid-receiving output VC arbitrates, in the
            // same ascending out_flat order as the scalar reference's
            // sorted bid list.
            while pending != 0 {
                let out_flat = pending.trailing_zeros() as usize;
                pending &= pending - 1;
                let inc = incoming[out_flat];
                incoming[out_flat] = 0;
                if let Some(g) = output.arbitrate(out_flat, inc) {
                    results[g] = Some(OutVc {
                        port: out_flat / v,
                        vc: out_flat % v,
                    });
                    input.update(g, out_flat % v);
                    output.update(out_flat, g);
                }
            }
        } else {
            // Stage 1: each requested output VC arbitrates among all
            // requesting input VCs.
            let mut pending = 0u64; // output VCs with >= 1 bid
            for (g, req) in requests.iter().enumerate() {
                let Some(req) = req else { continue };
                validate_request(spec, g, req);
                let mut mask = candidate_word(spec, g, req, free_out);
                while mask != 0 {
                    let ov = mask.trailing_zeros() as usize;
                    mask &= mask - 1;
                    let out_flat = req.out_port * v + ov;
                    incoming[out_flat] |= 1 << g;
                    pending |= 1 << out_flat;
                }
            }
            let mut chosen = 0u64; // input VCs chosen by >= 1 output VC
            while pending != 0 {
                let out_flat = pending.trailing_zeros() as usize;
                pending &= pending - 1;
                let inc = incoming[out_flat];
                incoming[out_flat] = 0;
                if let Some(g) = output.arbitrate(out_flat, inc) {
                    // All of g's bids share its destination port, so the
                    // local VC index suffices.
                    won[g] |= 1 << (out_flat % v);
                    chosen |= 1 << g;
                }
            }
            // Stage 2: each chosen input VC picks among output VCs that
            // chose it (ascending g, like the scalar regrouped sweep).
            while chosen != 0 {
                let g = chosen.trailing_zeros() as usize;
                chosen &= chosen - 1;
                let wmask = won[g];
                won[g] = 0;
                // Stage-1 winners can only come from live requests.
                let Some(req) = requests[g].as_ref() else {
                    continue;
                };
                if let Some(ov) = input.arbitrate(g, wmask) {
                    let out_flat = req.out_port * v + ov;
                    results[g] = Some(OutVc {
                        port: req.out_port,
                        vc: ov,
                    });
                    input.update(g, ov);
                    output.update(out_flat, g);
                }
            }
        }
        debug_assert!(incoming.iter().all(|&w| w == 0) && won.iter().all(|&w| w == 0));
        debug_assert_eq!(results.len(), n);
    }
}

impl VcAllocator for SeparableVcAllocator {
    fn spec(&self) -> &VcAllocSpec {
        &self.spec
    }

    fn allocate(
        &mut self,
        requests: &[Option<VcRequest>],
        free_out: &BitMatrix,
    ) -> Vec<Option<OutVc>> {
        let mut results = Vec::new();
        self.allocate_into(requests, free_out, &mut results);
        results
    }

    fn allocate_into(
        &mut self,
        requests: &[Option<VcRequest>],
        free_out: &BitMatrix,
        results: &mut Vec<Option<OutVc>>,
    ) {
        let n = self.spec.ports() * self.spec.total_vcs();
        assert_eq!(requests.len(), n, "one request slot per input VC");
        results.clear();
        results.resize(n, None);
        match &mut self.inner {
            SepVcInner::Kernel { .. } => self.kernel_allocate_into(requests, free_out, results),
            SepVcInner::Reference(r) => r.allocate_into(requests, free_out, results),
        }
    }

    fn reset(&mut self) {
        match &mut self.inner {
            SepVcInner::Kernel { input, output, .. } => {
                input.reset();
                output.reset();
            }
            SepVcInner::Reference(r) => r.reset(),
        }
    }
}

/// VC allocator built on a monolithic core allocator over the full
/// `P*V × P*V` request space — used for the wavefront implementation
/// (Figure 3(c)) and the maximum-size reference.
pub struct MatrixVcAllocator {
    spec: VcAllocSpec,
    inner: Box<dyn Allocator + Send>,
    /// Reusable `P*V × P*V` request matrix.
    matrix: BitMatrix,
    /// Reusable `P*V × P*V` grant matrix, filled via
    /// [`Allocator::allocate_into`] so kernel-backed cores stay zero-alloc.
    grants: BitMatrix,
}

impl MatrixVcAllocator {
    /// Wraps a core allocator architecture (meaningful for
    /// [`AllocatorKind::Wavefront`] and [`AllocatorKind::MaxSize`]).
    pub fn new(spec: VcAllocSpec, kind: AllocatorKind) -> Self {
        let n = spec.ports() * spec.total_vcs();
        MatrixVcAllocator {
            spec,
            inner: kind.build(n, n),
            matrix: BitMatrix::new(n, n),
            grants: BitMatrix::new(n, n),
        }
    }

    /// [`MatrixVcAllocator::new`] over the scalar-reference core allocator
    /// ([`AllocatorKind::build_reference`]) — for the differential tests.
    pub fn new_reference(spec: VcAllocSpec, kind: AllocatorKind) -> Self {
        let n = spec.ports() * spec.total_vcs();
        MatrixVcAllocator {
            spec,
            inner: kind.build_reference(n, n),
            matrix: BitMatrix::new(n, n),
            grants: BitMatrix::new(n, n),
        }
    }
}

impl VcAllocator for MatrixVcAllocator {
    fn spec(&self) -> &VcAllocSpec {
        &self.spec
    }

    fn allocate(
        &mut self,
        requests: &[Option<VcRequest>],
        free_out: &BitMatrix,
    ) -> Vec<Option<OutVc>> {
        let mut results = Vec::new();
        self.allocate_into(requests, free_out, &mut results);
        results
    }

    fn allocate_into(
        &mut self,
        requests: &[Option<VcRequest>],
        free_out: &BitMatrix,
        results: &mut Vec<Option<OutVc>>,
    ) {
        let spec = &self.spec;
        let v = spec.total_vcs();
        let n = spec.ports() * v;
        assert_eq!(requests.len(), n, "one request slot per input VC");
        assert_eq!(free_out.num_rows(), spec.ports());
        assert_eq!(free_out.num_cols(), v);

        self.matrix.clear();
        for (g, req) in requests.iter().enumerate() {
            let Some(req) = req else { continue };
            validate_request(spec, g, req);
            let mask = candidate_mask(spec, g, req, free_out);
            for ov in mask.iter_set() {
                self.matrix.set(g, req.out_port * v + ov, true);
            }
        }
        self.inner.allocate_into(&self.matrix, &mut self.grants);
        let grants = &self.grants;
        results.clear();
        results.extend((0..n).map(|g| {
            grants.row(g).first_set().map(|col| OutVc {
                port: col / v,
                vc: col % v,
            })
        }));
    }

    fn reset(&mut self) {
        self.inner.reset();
    }
}

/// Conventional ("dense") VC allocator (§4.1): handles requests from any
/// input VC to the whole range of output VCs, with legality enforced by
/// runtime request masks. Dispatches to the Figure 3 structure appropriate
/// for the chosen core architecture.
pub struct DenseVcAllocator {
    kind: AllocatorKind,
    inner: Box<dyn VcAllocator + Send>,
}

impl DenseVcAllocator {
    /// Builds a dense VC allocator around the given core architecture.
    pub fn new(spec: VcAllocSpec, kind: AllocatorKind) -> Self {
        use noc_arbiter::ArbiterKind::{Matrix, RoundRobin};
        let inner: Box<dyn VcAllocator + Send> = match kind {
            AllocatorKind::SepIfMatrix => Box::new(SeparableVcAllocator::new(spec, true, Matrix)),
            AllocatorKind::SepIfRr => Box::new(SeparableVcAllocator::new(spec, true, RoundRobin)),
            AllocatorKind::SepOfMatrix => Box::new(SeparableVcAllocator::new(spec, false, Matrix)),
            AllocatorKind::SepOfRr => Box::new(SeparableVcAllocator::new(spec, false, RoundRobin)),
            AllocatorKind::Wavefront | AllocatorKind::MaxSize => {
                Box::new(MatrixVcAllocator::new(spec, kind))
            }
        };
        DenseVcAllocator { kind, inner }
    }

    /// [`DenseVcAllocator::new`] built entirely from scalar-reference
    /// implementations (sort-based separable stages, element-wise cores) —
    /// the oracle side of the differential test layer.
    pub fn new_reference(spec: VcAllocSpec, kind: AllocatorKind) -> Self {
        use noc_arbiter::ArbiterKind::{Matrix, RoundRobin};
        let inner: Box<dyn VcAllocator + Send> = match kind {
            AllocatorKind::SepIfMatrix => {
                Box::new(reference::SeparableVcAllocator::new(spec, true, Matrix))
            }
            AllocatorKind::SepIfRr => {
                Box::new(reference::SeparableVcAllocator::new(spec, true, RoundRobin))
            }
            AllocatorKind::SepOfMatrix => {
                Box::new(reference::SeparableVcAllocator::new(spec, false, Matrix))
            }
            AllocatorKind::SepOfRr => Box::new(reference::SeparableVcAllocator::new(
                spec, false, RoundRobin,
            )),
            AllocatorKind::Wavefront | AllocatorKind::MaxSize => {
                Box::new(MatrixVcAllocator::new_reference(spec, kind))
            }
        };
        DenseVcAllocator { kind, inner }
    }

    /// The core allocator architecture in use.
    pub fn kind(&self) -> AllocatorKind {
        self.kind
    }
}

impl VcAllocator for DenseVcAllocator {
    fn spec(&self) -> &VcAllocSpec {
        self.inner.spec()
    }

    fn allocate(
        &mut self,
        requests: &[Option<VcRequest>],
        free_out: &BitMatrix,
    ) -> Vec<Option<OutVc>> {
        self.inner.allocate(requests, free_out)
    }

    fn allocate_into(
        &mut self,
        requests: &[Option<VcRequest>],
        free_out: &BitMatrix,
        results: &mut Vec<Option<OutVc>>,
    ) {
        self.inner.allocate_into(requests, free_out, results);
    }

    fn reset(&mut self) {
        self.inner.reset();
    }
}

/// Sparse VC allocator (§4.2): exploits the static class structure.
///
/// Because packets never change message class, the allocator splits into `M`
/// completely independent sub-allocators, each over the `P*R*C` VCs of one
/// message class — for the wavefront implementation this is exactly the
/// replacement of the `P*V`-input block by `M` blocks of `P*V/M` inputs the
/// paper describes. (The further arbiter-width reductions from
/// resource-class transition sparsity are logic-level optimizations modeled
/// by the cost model in `noc-hw`; they do not change matching behaviour.)
pub struct SparseVcAllocator {
    spec: VcAllocSpec,
    /// Class structure of one message class, used by the sub-allocators.
    sub_spec: VcAllocSpec,
    /// One sub-allocator per message class.
    subs: Vec<DenseVcAllocator>,
    kind: AllocatorKind,
    /// Reusable per-class projection of `requests` (`P * V/M` slots); only
    /// the `touched` slots are live and must be returned to `spare` before
    /// the next projection.
    sub_reqs: Vec<Option<VcRequest>>,
    /// Indices of `sub_reqs` currently holding a projected request.
    touched: Vec<usize>,
    /// Recycled `VcRequest` values (keeps their `classes` allocations).
    spare: Vec<VcRequest>,
    /// Reusable per-class projection of `free_out`.
    sub_free: BitMatrix,
    /// Reusable sub-allocator grant buffer.
    sub_grants: Vec<Option<OutVc>>,
}

impl SparseVcAllocator {
    /// Builds a sparse VC allocator around the given core architecture.
    pub fn new(spec: VcAllocSpec, kind: AllocatorKind) -> Self {
        let sub_spec = VcAllocSpec::new(
            spec.ports(),
            1,
            spec.resource_classes(),
            spec.vcs_per_class(),
            spec.rc_succ.clone(),
        );
        let n_sub = spec.ports() * sub_spec.total_vcs();
        SparseVcAllocator {
            subs: (0..spec.msg_classes())
                .map(|_| DenseVcAllocator::new(sub_spec.clone(), kind))
                .collect(),
            sub_reqs: vec![None; n_sub],
            touched: Vec::with_capacity(n_sub),
            // Pre-primed pool: at most one projected request per sub-slot,
            // each requesting at most every resource class, so the
            // steady-state projection loop never allocates.
            spare: (0..n_sub)
                .map(|_| VcRequest {
                    out_port: 0,
                    classes: Vec::with_capacity(sub_spec.resource_classes()),
                })
                .collect(),
            sub_free: BitMatrix::new(spec.ports(), sub_spec.total_vcs()),
            sub_grants: Vec::new(),
            sub_spec,
            spec,
            kind,
        }
    }

    /// The core allocator architecture in use.
    pub fn kind(&self) -> AllocatorKind {
        self.kind
    }

    /// Width of each per-message-class sub-allocator.
    pub fn sub_width(&self) -> usize {
        self.spec.ports() * self.spec.resource_classes() * self.spec.vcs_per_class()
    }
}

impl VcAllocator for SparseVcAllocator {
    fn spec(&self) -> &VcAllocSpec {
        &self.spec
    }

    fn allocate(
        &mut self,
        requests: &[Option<VcRequest>],
        free_out: &BitMatrix,
    ) -> Vec<Option<OutVc>> {
        let spec = &self.spec;
        let v = spec.total_vcs();
        let v_sub = self.sub_spec.total_vcs();
        let n = spec.ports() * v;
        assert_eq!(requests.len(), n, "one request slot per input VC");
        let mut results: Vec<Option<OutVc>> = vec![None; n];

        for (m, sub) in self.subs.iter_mut().enumerate() {
            // Project requests and availability onto message class m.
            let mut sub_reqs: Vec<Option<VcRequest>> = vec![None; spec.ports() * v_sub];
            for (g, req) in requests.iter().enumerate() {
                let Some(req) = req else { continue };
                let (im, ir, ibank) = spec.vc_class(g % v);
                if im != m {
                    continue;
                }
                validate_request(spec, g, req);
                let sub_vc = ir * spec.vcs_per_class() + ibank;
                sub_reqs[(g / v) * v_sub + sub_vc] = Some(req.clone());
            }
            let mut sub_free = BitMatrix::new(spec.ports(), v_sub);
            for p in 0..spec.ports() {
                for sv in 0..v_sub {
                    sub_free.set(p, sv, free_out.get(p, m * v_sub + sv));
                }
            }
            let sub_grants = sub.allocate(&sub_reqs, &sub_free);
            for (g, req) in requests.iter().enumerate() {
                if req.is_none() {
                    continue;
                }
                let (im, ir, ibank) = spec.vc_class(g % v);
                if im != m {
                    continue;
                }
                let sub_vc = ir * spec.vcs_per_class() + ibank;
                if let Some(grant) = sub_grants[(g / v) * v_sub + sub_vc] {
                    results[g] = Some(OutVc {
                        port: grant.port,
                        vc: m * v_sub + grant.vc,
                    });
                }
            }
        }
        results
    }

    /// Scratch-buffer fast path: identical matching behaviour to
    /// [`SparseVcAllocator::allocate`] (which is kept as the
    /// fresh-allocation reference for differential tests), but the per-class
    /// request/availability projections, recycled `VcRequest` values, and
    /// grant buffers are all reused across cycles, so steady-state operation
    /// performs no heap allocation at this level.
    fn allocate_into(
        &mut self,
        requests: &[Option<VcRequest>],
        free_out: &BitMatrix,
        results: &mut Vec<Option<OutVc>>,
    ) {
        let SparseVcAllocator {
            spec,
            sub_spec,
            subs,
            kind: _,
            sub_reqs,
            touched,
            spare,
            sub_free,
            sub_grants,
        } = self;
        let v = spec.total_vcs();
        let v_sub = sub_spec.total_vcs();
        let n = spec.ports() * v;
        assert_eq!(requests.len(), n, "one request slot per input VC");
        results.clear();
        results.resize(n, None);

        for (m, sub) in subs.iter_mut().enumerate() {
            // Project requests and availability onto message class m,
            // recycling the request slots populated for the previous class.
            for &i in touched.iter() {
                if let Some(r) = sub_reqs[i].take() {
                    spare.push(r);
                }
            }
            touched.clear();
            for (g, req) in requests.iter().enumerate() {
                let Some(req) = req else { continue };
                let (im, ir, ibank) = spec.vc_class(g % v);
                if im != m {
                    continue;
                }
                validate_request(spec, g, req);
                let sub_vc = ir * spec.vcs_per_class() + ibank;
                let idx = (g / v) * v_sub + sub_vc;
                let mut slot = spare.pop().unwrap_or_else(|| VcRequest {
                    out_port: 0,
                    classes: Vec::new(),
                });
                slot.out_port = req.out_port;
                slot.classes.clear();
                slot.classes.extend_from_slice(&req.classes);
                sub_reqs[idx] = Some(slot);
                touched.push(idx);
            }
            sub_free.clear();
            for p in 0..spec.ports() {
                for sv in 0..v_sub {
                    if free_out.get(p, m * v_sub + sv) {
                        sub_free.set(p, sv, true);
                    }
                }
            }
            sub.allocate_into(sub_reqs, sub_free, sub_grants);
            for (g, req) in requests.iter().enumerate() {
                if req.is_none() {
                    continue;
                }
                let (im, ir, ibank) = spec.vc_class(g % v);
                if im != m {
                    continue;
                }
                let sub_vc = ir * spec.vcs_per_class() + ibank;
                if let Some(grant) = sub_grants[(g / v) * v_sub + sub_vc] {
                    results[g] = Some(OutVc {
                        port: grant.port,
                        vc: m * v_sub + grant.vc,
                    });
                }
            }
        }
        // Return the final class's projections to the spare pool so stale
        // requests can never leak into the next allocation round.
        for &i in touched.iter() {
            if let Some(r) = sub_reqs[i].take() {
                spare.push(r);
            }
        }
        touched.clear();
    }

    fn reset(&mut self) {
        for s in &mut self.subs {
            s.reset();
        }
    }
}

/// Scalar predecessors of the bit-parallel VC-allocation kernels, kept
/// alive as differential-testing oracles (and as the wide-instance
/// fallback when `P*V > 64`). Element-wise `Bits` masks and sort-based
/// bid grouping instead of `u64` words and ctz sweeps.
pub mod reference {
    use super::{
        candidate_mask, validate_request, BitMatrix, OutVc, VcAllocSpec, VcAllocator, VcRequest,
    };

    /// Scalar separable VC allocator: boxed per-arbiter state and a sorted
    /// `(out_flat, g)` bid edge list where the kernel uses
    /// [`noc_arbiter::ArbiterBank`] words and a pending mask. Grant- and
    /// priority-identical to the kernel by construction: the sorted group
    /// sweep visits output VCs in ascending `out_flat` order, exactly the
    /// kernel's ctz pop order over its pending mask.
    pub struct SeparableVcAllocator {
        spec: VcAllocSpec,
        input_first: bool,
        /// Per input VC (`P*V`): `V:1` arbiter over output-VC indices at the
        /// destination port.
        input_arbs: Vec<Box<dyn noc_arbiter::Arbiter + Send>>,
        /// Per output VC (`P*V`): `P*V:1` *tree* arbiter over input VCs.
        output_arbs: Vec<Box<dyn noc_arbiter::Arbiter + Send>>,
        /// Reusable stage-1 bid edge list `(out_flat, g)`.
        bids: Vec<(usize, usize)>,
        /// Reusable output-first stage-1 winner list and its per-input
        /// regroup.
        stage1: Vec<(usize, usize)>,
        by_input: Vec<(usize, usize)>,
    }

    impl SeparableVcAllocator {
        /// Builds the Figure 3 structure with the given arbiter kind.
        pub fn new(spec: VcAllocSpec, input_first: bool, kind: noc_arbiter::ArbiterKind) -> Self {
            let v = spec.total_vcs();
            let n = spec.ports() * v;
            SeparableVcAllocator {
                input_first,
                input_arbs: (0..n).map(|_| kind.build(v)).collect(),
                output_arbs: (0..n)
                    .map(|_| {
                        Box::new(noc_arbiter::TreeArbiter::new(spec.ports(), v, kind))
                            as Box<dyn noc_arbiter::Arbiter + Send>
                    })
                    .collect(),
                spec,
                // One bid per input VC at most, so pre-sizing to `n` keeps
                // the per-cycle scratch lists allocation-free.
                bids: Vec::with_capacity(n),
                stage1: Vec::with_capacity(n),
                by_input: Vec::with_capacity(n),
            }
        }
    }

    impl VcAllocator for SeparableVcAllocator {
        fn spec(&self) -> &VcAllocSpec {
            &self.spec
        }

        fn allocate(
            &mut self,
            requests: &[Option<VcRequest>],
            free_out: &BitMatrix,
        ) -> Vec<Option<OutVc>> {
            let mut results = Vec::new();
            self.allocate_into(requests, free_out, &mut results);
            results
        }

        fn allocate_into(
            &mut self,
            requests: &[Option<VcRequest>],
            free_out: &BitMatrix,
            results: &mut Vec<Option<OutVc>>,
        ) {
            // Split borrows so the arbiters can be driven mutably while the
            // spec and scratch buffers are read.
            let SeparableVcAllocator {
                spec,
                input_first,
                input_arbs,
                output_arbs,
                bids,
                stage1,
                by_input,
            } = self;
            let v = spec.total_vcs();
            let n = spec.ports() * v;
            assert_eq!(requests.len(), n, "one request slot per input VC");
            results.clear();
            results.resize(n, None);

            // Sparse edge list `(out_flat, g)` of stage-1 bids — iterating
            // only requested outputs keeps work O(requests).
            bids.clear();

            if *input_first {
                // Stage 1: each input VC picks one output VC at its port.
                for (g, req) in requests.iter().enumerate() {
                    let Some(req) = req else { continue };
                    validate_request(spec, g, req);
                    let mask = candidate_mask(spec, g, req, free_out);
                    if let Some(ov) = input_arbs[g].arbitrate(&mask) {
                        bids.push((req.out_port * v + ov, g));
                    }
                }
                // Stage 2: each bid-receiving output VC arbitrates.
                bids.sort_unstable();
                let mut i = 0;
                while i < bids.len() {
                    let out_flat = bids[i].0;
                    let mut incoming = noc_arbiter::Bits::new(n);
                    let mut j = i;
                    while j < bids.len() && bids[j].0 == out_flat {
                        incoming.set(bids[j].1, true);
                        j += 1;
                    }
                    i = j;
                    if let Some(g) = output_arbs[out_flat].arbitrate(&incoming) {
                        results[g] = Some(OutVc {
                            port: out_flat / v,
                            vc: out_flat % v,
                        });
                        input_arbs[g].update(out_flat % v);
                        output_arbs[out_flat].update(g);
                    }
                }
            } else {
                // Stage 1: each requested output VC arbitrates among all
                // requesting input VCs.
                for (g, req) in requests.iter().enumerate() {
                    let Some(req) = req else { continue };
                    validate_request(spec, g, req);
                    let mask = candidate_mask(spec, g, req, free_out);
                    for ov in mask.iter_set() {
                        bids.push((req.out_port * v + ov, g));
                    }
                }
                bids.sort_unstable();
                stage1.clear(); // (out_flat, winner g)
                let mut i = 0;
                while i < bids.len() {
                    let out_flat = bids[i].0;
                    let mut incoming = noc_arbiter::Bits::new(n);
                    let mut j = i;
                    while j < bids.len() && bids[j].0 == out_flat {
                        incoming.set(bids[j].1, true);
                        j += 1;
                    }
                    i = j;
                    if let Some(g) = output_arbs[out_flat].arbitrate(&incoming) {
                        stage1.push((out_flat, g));
                    }
                }
                // Stage 2: each input VC picks among output VCs that chose
                // it.
                by_input.clear();
                by_input.extend(stage1.iter().map(|&(out_flat, g)| (g, out_flat)));
                by_input.sort_unstable();
                let mut i = 0;
                while i < by_input.len() {
                    let g = by_input[i].0;
                    let mut j = i;
                    while j < by_input.len() && by_input[j].0 == g {
                        j += 1;
                    }
                    // Stage-1 winners can only come from live requests.
                    let Some(req) = requests[g].as_ref() else {
                        i = j;
                        continue;
                    };
                    let mut won = noc_arbiter::Bits::new(v);
                    for k in i..j {
                        debug_assert_eq!(by_input[k].1 / v, req.out_port);
                        won.set(by_input[k].1 % v, true);
                    }
                    i = j;
                    if let Some(ov) = input_arbs[g].arbitrate(&won) {
                        let out_flat = req.out_port * v + ov;
                        results[g] = Some(OutVc {
                            port: req.out_port,
                            vc: ov,
                        });
                        input_arbs[g].update(ov);
                        output_arbs[out_flat].update(g);
                    }
                }
            }
        }

        fn reset(&mut self) {
            for a in self.input_arbs.iter_mut().chain(&mut self.output_arbs) {
                a.reset();
            }
        }
    }
}

/// Checks that a VC-allocation result is valid for the given requests and
/// availability — used by tests and debug assertions throughout the
/// workspace.
pub fn validate_vc_grants(
    spec: &VcAllocSpec,
    requests: &[Option<VcRequest>],
    free_out: &BitMatrix,
    grants: &[Option<OutVc>],
) -> Result<(), String> {
    let v = spec.total_vcs();
    // Runs per cycle under debug assertions; `Bits` keeps the dedup set
    // inline (no allocation) for realistic port/VC counts.
    let mut used = noc_arbiter::Bits::new(free_out.num_rows() * v);
    for (g, grant) in grants.iter().enumerate() {
        let Some(grant) = grant else { continue };
        let req = requests[g]
            .as_ref()
            .ok_or_else(|| format!("grant to idle input VC {g}"))?;
        if grant.port != req.out_port {
            return Err(format!("input VC {g}: granted wrong port"));
        }
        let (im, _, _) = spec.vc_class(g % v);
        let (om, or, _) = spec.vc_class(grant.vc);
        if om != im {
            return Err(format!("input VC {g}: message class changed"));
        }
        if !req.classes.contains(&or) {
            return Err(format!("input VC {g}: granted unrequested class {or}"));
        }
        if !free_out.get(grant.port, grant.vc) {
            return Err(format!("input VC {g}: granted busy output VC"));
        }
        let slot = grant.port * v + grant.vc;
        if used.get(slot) {
            return Err(format!(
                "output VC {}:{} granted twice",
                grant.port, grant.vc
            ));
        }
        used.set(slot, true);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn try_new_reports_descriptive_errors() {
        let ok = VcAllocSpec::try_new(5, 2, 1, 2, vec![vec![true]]);
        assert!(ok.is_ok());
        let e = VcAllocSpec::try_new(0, 2, 1, 2, vec![vec![true]]).unwrap_err();
        assert_eq!(e, SpecError::ZeroDimension { dimension: "ports" });
        assert!(e.to_string().contains("ports"));
        let e = VcAllocSpec::try_new(5, 2, 2, 2, vec![vec![true, true]]).unwrap_err();
        assert!(matches!(e, SpecError::TransitionShape { rows: 1, .. }));
        let e = VcAllocSpec::try_new(5, 2, 2, 2, vec![vec![true], vec![true, true]]).unwrap_err();
        assert!(
            matches!(
                e,
                SpecError::TransitionShape {
                    bad_row: Some((0, 1)),
                    ..
                }
            ),
            "{e}"
        );
        let e = VcAllocSpec::try_new(5, 2, 2, 2, vec![vec![true, true], vec![false, false]])
            .unwrap_err();
        assert_eq!(e, SpecError::DeadEndClass { class: 1 });
        assert_eq!(e.to_string(), "resource class 1 has no successor");
    }

    #[test]
    #[should_panic(expected = "resource class 0 has no successor")]
    fn new_panics_with_descriptive_message() {
        VcAllocSpec::new(5, 1, 1, 1, vec![vec![false]]);
    }

    #[test]
    fn spec_arithmetic() {
        let s = VcAllocSpec::fbfly(4);
        assert_eq!(s.total_vcs(), 16);
        assert_eq!(s.label(), "2x2x4");
        assert_eq!(s.class_base(0, 0), 0);
        assert_eq!(s.class_base(0, 1), 4);
        assert_eq!(s.class_base(1, 0), 8);
        assert_eq!(s.class_base(1, 1), 12);
        assert_eq!(s.vc_class(0), (0, 0, 0));
        assert_eq!(s.vc_class(7), (0, 1, 3));
        assert_eq!(s.vc_class(15), (1, 1, 3));
    }

    #[test]
    fn fig4_transition_count_is_96_of_256() {
        // §4.2: "only 96 of the 256 total possible VC-to-VC transitions are
        // actually legal" for fbfly with 2×2×4 VCs.
        let s = VcAllocSpec::fbfly(4);
        assert_eq!(s.total_vcs() * s.total_vcs(), 256);
        assert_eq!(s.legal_transition_count(), 96);
    }

    #[test]
    fn fig4_successor_bound() {
        // "any given VC is restricted to at most eight possible successor
        // and predecessor VCs, all confined to the same matrix quadrant".
        let s = VcAllocSpec::fbfly(4);
        let t = s.transition_matrix();
        for iv in 0..16 {
            assert!(t.row(iv).count_ones() <= 8, "vc {iv}");
            assert!(t.col(iv).count_ones() <= 8, "vc {iv}");
            let (im, _, _) = s.vc_class(iv);
            for ov in t.row(iv).iter_set() {
                let (om, _, _) = s.vc_class(ov);
                assert_eq!(im, om, "crossed quadrant");
            }
        }
    }

    #[test]
    fn mesh_transitions_stay_within_message_class() {
        let s = VcAllocSpec::mesh(2);
        // V=4; each message class block is 2x2, all legal within it.
        assert_eq!(s.legal_transition_count(), 8);
    }

    fn random_workload(
        spec: &VcAllocSpec,
        rng: &mut impl Rng,
        rate: f64,
    ) -> (Vec<Option<VcRequest>>, BitMatrix) {
        let v = spec.total_vcs();
        let n = spec.ports() * v;
        let reqs = (0..n)
            .map(|g| {
                if rng.gen_bool(rate) {
                    // Routing picks a single successor class per request
                    // (min vs non-minimal is a routing decision, not an
                    // allocation choice).
                    let (_, ir, _) = spec.vc_class(g % v);
                    let succ = spec.rc_successors(ir);
                    let class = succ[rng.gen_range(0..succ.len())];
                    Some(VcRequest::one_class(rng.gen_range(0..spec.ports()), class))
                } else {
                    None
                }
            })
            .collect();
        let mut free = BitMatrix::new(spec.ports(), v);
        for p in 0..spec.ports() {
            for ov in 0..v {
                if rng.gen_bool(0.8) {
                    free.set(p, ov, true);
                }
            }
        }
        (reqs, free)
    }

    #[test]
    fn dense_grants_are_valid() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for spec in [VcAllocSpec::mesh(2), VcAllocSpec::fbfly(2)] {
            for kind in AllocatorKind::QUALITY_FIGURE_KINDS {
                let mut a = DenseVcAllocator::new(spec.clone(), kind);
                for _ in 0..30 {
                    let (reqs, free) = random_workload(&spec, &mut rng, 0.5);
                    let grants = a.allocate(&reqs, &free);
                    validate_vc_grants(&spec, &reqs, &free, &grants).unwrap();
                }
            }
        }
    }

    #[test]
    fn sparse_grants_are_valid() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        for spec in [VcAllocSpec::mesh(2), VcAllocSpec::fbfly(2)] {
            for kind in AllocatorKind::QUALITY_FIGURE_KINDS {
                let mut a = SparseVcAllocator::new(spec.clone(), kind);
                for _ in 0..30 {
                    let (reqs, free) = random_workload(&spec, &mut rng, 0.5);
                    let grants = a.allocate(&reqs, &free);
                    validate_vc_grants(&spec, &reqs, &free, &grants).unwrap();
                }
            }
        }
    }

    #[test]
    fn sparse_and_dense_grant_counts_match_for_wavefront_per_class() {
        // For C=1 both must produce maximum matchings (§4.3.2), so counts
        // agree exactly.
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let spec = VcAllocSpec::fbfly(1);
        let mut dense = DenseVcAllocator::new(spec.clone(), AllocatorKind::MaxSize);
        let mut sparse = SparseVcAllocator::new(spec.clone(), AllocatorKind::MaxSize);
        for _ in 0..50 {
            let (reqs, free) = random_workload(&spec, &mut rng, 0.6);
            let gd: usize = dense
                .allocate(&reqs, &free)
                .iter()
                .filter(|g| g.is_some())
                .count();
            let gs: usize = sparse
                .allocate(&reqs, &free)
                .iter()
                .filter(|g| g.is_some())
                .count();
            assert_eq!(gd, gs);
        }
    }

    #[test]
    fn single_vc_per_class_all_allocators_maximum() {
        // §4.3.2: with one VC per class, all three implementations have
        // matching quality 1 — check grant counts equal MaxSize's.
        let mut rng = rand::rngs::StdRng::seed_from_u64(14);
        for spec in [VcAllocSpec::mesh(1), VcAllocSpec::fbfly(1)] {
            let mut reference = DenseVcAllocator::new(spec.clone(), AllocatorKind::MaxSize);
            for kind in AllocatorKind::QUALITY_FIGURE_KINDS {
                let mut dense = DenseVcAllocator::new(spec.clone(), kind);
                let mut sparse = SparseVcAllocator::new(spec.clone(), kind);
                for _ in 0..25 {
                    let (reqs, free) = random_workload(&spec, &mut rng, 0.7);
                    let gmax = reference
                        .allocate(&reqs, &free)
                        .iter()
                        .filter(|g| g.is_some())
                        .count();
                    for (label, grants) in [
                        ("dense", dense.allocate(&reqs, &free)),
                        ("sparse", sparse.allocate(&reqs, &free)),
                    ] {
                        let got = grants.iter().filter(|g| g.is_some()).count();
                        assert_eq!(got, gmax, "{kind:?} {label} {}", spec.label());
                    }
                }
            }
        }
    }

    #[test]
    fn busy_output_vcs_never_granted() {
        let spec = VcAllocSpec::mesh(2);
        let v = spec.total_vcs();
        let mut a = DenseVcAllocator::new(spec.clone(), AllocatorKind::Wavefront);
        let mut reqs: Vec<Option<VcRequest>> = vec![None; spec.ports() * v];
        reqs[0] = Some(VcRequest::one_class(1, 0));
        // All output VCs busy -> no grant possible.
        let free = BitMatrix::new(spec.ports(), v);
        let grants = a.allocate(&reqs, &free);
        assert!(grants.iter().all(|g| g.is_none()));
    }

    #[test]
    #[should_panic(expected = "illegal resource-class transition")]
    fn illegal_class_transition_rejected() {
        let spec = VcAllocSpec::fbfly(1);
        let v = spec.total_vcs();
        let mut a = SparseVcAllocator::new(spec.clone(), AllocatorKind::SepIfRr);
        let mut reqs: Vec<Option<VcRequest>> = vec![None; spec.ports() * v];
        // Input VC 1 is (msg 0, res 1 = minimal); requesting non-minimal
        // (class 0) is illegal.
        reqs[1] = Some(VcRequest::one_class(0, 0));
        let free = BitMatrix::new(spec.ports(), v);
        a.allocate(&reqs, &free);
    }
}
