//! Separable input-first and output-first allocators (§2.1).
//!
//! Both allocators are implemented twice: a `u64` mask-and-ctz kernel over
//! [`ArbiterBank`] state (the fast path whenever both dimensions fit the
//! 64-bit kernel word) and the element-wise scalar predecessor in
//! [`reference`], which also serves as the fallback for wider instances.
//! The differential test layer drives the two on identical request streams
//! and asserts grant-identical behaviour, including priority state across
//! multi-round sequences.

use crate::{Allocator, BitMatrix};
use noc_arbiter::bits::width_mask;
use noc_arbiter::{ArbiterBank, ArbiterKind};

/// Separable input-first allocator (`sep_if`, Figure 1(a)).
///
/// Stage 1: each requester's *input arbiter* picks one resource among those
/// it requests. Stage 2: each resource's *output arbiter* picks one winner
/// among the requesters whose stage-1 choice landed on it. A grant is issued
/// where both stages agree.
///
/// Priority state in either stage advances only for grants that succeed in
/// *both* stages (the iSLIP rule from §2.1), which prevents traffic-pattern-
/// dependent starvation.
pub struct SeparableInputFirst {
    requesters: usize,
    resources: usize,
    /// Number of decoupled stage-1/stage-2 passes; 1 is the single-cycle
    /// configuration the paper evaluates, >1 models iterative refinement
    /// (mentioned and rejected for NoCs in §2.1 — kept here for ablations).
    iterations: usize,
    inner: SepIfInner,
}

enum SepIfInner {
    Kernel {
        /// One `resources`-wide arbiter per requester.
        input: ArbiterBank,
        /// One `requesters`-wide arbiter per resource.
        output: ArbiterBank,
        /// Stage-1 pick accumulator: `incoming[c]` bit `r` set iff requester
        /// `r` chose resource `c`. All-zero between calls (stage 2 clears
        /// exactly the slots stage 1 set), so steady state never allocates.
        incoming: Vec<u64>,
    },
    Reference(reference::SeparableInputFirst),
}

impl SeparableInputFirst {
    /// Single-iteration separable input-first allocator.
    pub fn new(requesters: usize, resources: usize, kind: ArbiterKind) -> Self {
        Self::with_iterations(requesters, resources, kind, 1)
    }

    /// Multi-iteration variant: after each pass, matched rows and columns
    /// are removed and the stages re-run on the residual requests.
    pub fn with_iterations(
        requesters: usize,
        resources: usize,
        kind: ArbiterKind,
        iterations: usize,
    ) -> Self {
        assert!(iterations >= 1);
        assert!(requesters > 0 && resources > 0);
        let inner = if requesters <= 64 && resources <= 64 {
            SepIfInner::Kernel {
                input: ArbiterBank::new(kind, requesters, resources),
                output: ArbiterBank::new(kind, resources, requesters),
                incoming: vec![0; resources],
            }
        } else {
            SepIfInner::Reference(reference::SeparableInputFirst::with_iterations(
                requesters, resources, kind, iterations,
            ))
        };
        SeparableInputFirst {
            requesters,
            resources,
            iterations,
            inner,
        }
    }

    fn kernel_allocate_into(&mut self, requests: &BitMatrix, grants: &mut BitMatrix) {
        let SepIfInner::Kernel {
            input,
            output,
            incoming,
        } = &mut self.inner
        else {
            unreachable!()
        };
        let (nr, nc) = (self.requesters, self.resources);
        let mut row_free = width_mask(nr);
        let mut col_free = width_mask(nc);
        for _ in 0..self.iterations {
            // Stage 1: each free requester picks one free resource.
            let mut pending = 0u64; // columns with at least one incoming pick
            let mut rf = row_free;
            while rf != 0 {
                let r = rf.trailing_zeros() as usize;
                rf &= rf - 1;
                let reqs = requests.row(r).low_word() & col_free;
                if let Some(c) = input.arbitrate(r, reqs) {
                    incoming[c] |= 1 << r;
                    pending |= 1 << c;
                }
            }
            // Stage 2: each resource arbitrates among incoming stage-1
            // picks. Popping `pending` in ctz order visits exactly the
            // free columns with contenders, in the same ascending order
            // as the scalar reference's free-column sweep.
            let mut any = false;
            while pending != 0 {
                let c = pending.trailing_zeros() as usize;
                pending &= pending - 1;
                let inc = incoming[c];
                incoming[c] = 0;
                if let Some(w) = output.arbitrate(c, inc) {
                    grants.set(w, c, true);
                    row_free &= !(1u64 << w);
                    col_free &= !(1u64 << c);
                    // Both stages succeeded: commit priority updates.
                    input.update(w, c);
                    output.update(c, w);
                    any = true;
                }
            }
            if !any {
                break;
            }
        }
    }
}

impl Allocator for SeparableInputFirst {
    fn num_requesters(&self) -> usize {
        self.requesters
    }

    fn num_resources(&self) -> usize {
        self.resources
    }

    fn allocate(&mut self, requests: &BitMatrix) -> BitMatrix {
        let mut grants = BitMatrix::new(self.requesters, self.resources);
        self.allocate_into(requests, &mut grants);
        grants
    }

    fn allocate_into(&mut self, requests: &BitMatrix, grants: &mut BitMatrix) {
        assert_eq!(requests.num_rows(), self.requesters);
        assert_eq!(requests.num_cols(), self.resources);
        assert_eq!(grants.num_rows(), self.requesters);
        assert_eq!(grants.num_cols(), self.resources);
        grants.clear();
        match &mut self.inner {
            SepIfInner::Kernel { .. } => self.kernel_allocate_into(requests, grants),
            SepIfInner::Reference(r) => r.allocate_into(requests, grants),
        }
    }

    fn reset(&mut self) {
        match &mut self.inner {
            SepIfInner::Kernel { input, output, .. } => {
                input.reset();
                output.reset();
            }
            SepIfInner::Reference(r) => r.reset(),
        }
    }
}

/// Separable output-first allocator (`sep_of`, Figure 1(b)).
///
/// Stage 1: every requester eagerly forwards *all* its requests; each
/// resource's arbiter picks one requester among all incoming requests.
/// Stage 2: each requester that won at one or more resources picks a single
/// one with its input arbiter. Priority updates again apply only to grants
/// surviving both stages.
pub struct SeparableOutputFirst {
    requesters: usize,
    resources: usize,
    iterations: usize,
    inner: SepOfInner,
}

enum SepOfInner {
    Kernel {
        /// One `requesters`-wide arbiter per resource.
        output: ArbiterBank,
        /// One `resources`-wide arbiter per requester.
        input: ArbiterBank,
        /// Column scatter scratch: `colw[c]` bit `r` set iff free requester
        /// `r` requests resource `c`. All-zero between calls.
        colw: Vec<u64>,
        /// Stage-1 win accumulator: `won[r]` bit `c` set iff resource `c`
        /// chose requester `r`. All-zero between calls.
        won: Vec<u64>,
    },
    Reference(reference::SeparableOutputFirst),
}

impl SeparableOutputFirst {
    /// Single-iteration separable output-first allocator.
    pub fn new(requesters: usize, resources: usize, kind: ArbiterKind) -> Self {
        Self::with_iterations(requesters, resources, kind, 1)
    }

    /// Multi-iteration variant (see [`SeparableInputFirst::with_iterations`]).
    pub fn with_iterations(
        requesters: usize,
        resources: usize,
        kind: ArbiterKind,
        iterations: usize,
    ) -> Self {
        assert!(iterations >= 1);
        assert!(requesters > 0 && resources > 0);
        let inner = if requesters <= 64 && resources <= 64 {
            SepOfInner::Kernel {
                output: ArbiterBank::new(kind, resources, requesters),
                input: ArbiterBank::new(kind, requesters, resources),
                colw: vec![0; resources],
                won: vec![0; requesters],
            }
        } else {
            SepOfInner::Reference(reference::SeparableOutputFirst::with_iterations(
                requesters, resources, kind, iterations,
            ))
        };
        SeparableOutputFirst {
            requesters,
            resources,
            iterations,
            inner,
        }
    }

    fn kernel_allocate_into(&mut self, requests: &BitMatrix, grants: &mut BitMatrix) {
        let SepOfInner::Kernel {
            output,
            input,
            colw,
            won,
        } = &mut self.inner
        else {
            unreachable!()
        };
        let (nr, nc) = (self.requesters, self.resources);
        let mut row_free = width_mask(nr);
        let mut col_free = width_mask(nc);
        for _ in 0..self.iterations {
            // Scatter the free rows into column words (a bit transpose of
            // the residual request matrix).
            let mut active = 0u64; // columns with at least one request
            let mut rf = row_free;
            while rf != 0 {
                let r = rf.trailing_zeros() as usize;
                rf &= rf - 1;
                let mut w = requests.row(r).low_word();
                while w != 0 {
                    let c = w.trailing_zeros() as usize;
                    w &= w - 1;
                    colw[c] |= 1 << r;
                    active |= 1 << c;
                }
            }
            // Stage 1: arbitration at each free resource over free
            // requesters. Columns outside `col_free` still have their
            // scratch cleared so the all-zero invariant holds.
            let mut pending = 0u64; // requesters chosen by >= 1 resource
            while active != 0 {
                let c = active.trailing_zeros() as usize;
                active &= active - 1;
                let inc = colw[c];
                colw[c] = 0;
                if col_free >> c & 1 != 0 {
                    if let Some(w) = output.arbitrate(c, inc) {
                        won[w] |= 1 << c;
                        pending |= 1 << w;
                    }
                }
            }
            // Stage 2: each chosen requester picks among resources that
            // chose it, ascending like the scalar free-row sweep.
            let mut any = false;
            while pending != 0 {
                let r = pending.trailing_zeros() as usize;
                pending &= pending - 1;
                let wmask = won[r];
                won[r] = 0;
                if let Some(c) = input.arbitrate(r, wmask) {
                    grants.set(r, c, true);
                    row_free &= !(1u64 << r);
                    col_free &= !(1u64 << c);
                    output.update(c, r);
                    input.update(r, c);
                    any = true;
                }
            }
            if !any {
                break;
            }
        }
    }
}

impl Allocator for SeparableOutputFirst {
    fn num_requesters(&self) -> usize {
        self.requesters
    }

    fn num_resources(&self) -> usize {
        self.resources
    }

    fn allocate(&mut self, requests: &BitMatrix) -> BitMatrix {
        let mut grants = BitMatrix::new(self.requesters, self.resources);
        self.allocate_into(requests, &mut grants);
        grants
    }

    fn allocate_into(&mut self, requests: &BitMatrix, grants: &mut BitMatrix) {
        assert_eq!(requests.num_rows(), self.requesters);
        assert_eq!(requests.num_cols(), self.resources);
        assert_eq!(grants.num_rows(), self.requesters);
        assert_eq!(grants.num_cols(), self.resources);
        grants.clear();
        match &mut self.inner {
            SepOfInner::Kernel { .. } => self.kernel_allocate_into(requests, grants),
            SepOfInner::Reference(r) => r.allocate_into(requests, grants),
        }
    }

    fn reset(&mut self) {
        match &mut self.inner {
            SepOfInner::Kernel { output, input, .. } => {
                output.reset();
                input.reset();
            }
            SepOfInner::Reference(r) => r.reset(),
        }
    }
}

/// The scalar predecessors of the separable kernels: one boxed [`Arbiter`]
/// per port, element-wise stage sweeps. Kept alive for differential testing
/// and as the fallback for instances wider than the 64-bit kernel word.
pub mod reference {
    use crate::{Allocator, BitMatrix};
    use noc_arbiter::{Arbiter, ArbiterKind, Bits};

    /// Scalar separable input-first allocator (`sep_if`).
    pub struct SeparableInputFirst {
        input_arbs: Vec<Box<dyn Arbiter + Send>>,
        output_arbs: Vec<Box<dyn Arbiter + Send>>,
        iterations: usize,
    }

    impl SeparableInputFirst {
        /// Scalar counterpart of [`super::SeparableInputFirst::new`].
        pub fn new(requesters: usize, resources: usize, kind: ArbiterKind) -> Self {
            Self::with_iterations(requesters, resources, kind, 1)
        }

        /// Scalar counterpart of
        /// [`super::SeparableInputFirst::with_iterations`].
        pub fn with_iterations(
            requesters: usize,
            resources: usize,
            kind: ArbiterKind,
            iterations: usize,
        ) -> Self {
            assert!(iterations >= 1);
            SeparableInputFirst {
                input_arbs: (0..requesters).map(|_| kind.build(resources)).collect(),
                output_arbs: (0..resources).map(|_| kind.build(requesters)).collect(),
                iterations,
            }
        }
    }

    impl Allocator for SeparableInputFirst {
        fn num_requesters(&self) -> usize {
            self.input_arbs.len()
        }

        fn num_resources(&self) -> usize {
            self.output_arbs.len()
        }

        fn allocate(&mut self, requests: &BitMatrix) -> BitMatrix {
            assert_eq!(requests.num_rows(), self.num_requesters());
            assert_eq!(requests.num_cols(), self.num_resources());
            let (nr, nc) = (self.num_requesters(), self.num_resources());
            let mut grants = BitMatrix::new(nr, nc);
            let mut row_free = Bits::ones(nr);
            let mut col_free = Bits::ones(nc);

            for _ in 0..self.iterations {
                // Stage 1: each free requester picks one free resource.
                let mut choice: Vec<Option<usize>> = vec![None; nr];
                for r in row_free.iter_set() {
                    let mut reqs = requests.row(r).clone();
                    reqs.intersect_with(&col_free);
                    choice[r] = self.input_arbs[r].arbitrate(&reqs);
                }
                // Stage 2: each resource arbitrates among incoming picks.
                let mut any = false;
                for c in col_free.clone().iter_set() {
                    let mut incoming = Bits::new(nr);
                    for r in 0..nr {
                        if choice[r] == Some(c) {
                            incoming.set(r, true);
                        }
                    }
                    if let Some(w) = self.output_arbs[c].arbitrate(&incoming) {
                        grants.set(w, c, true);
                        row_free.set(w, false);
                        col_free.set(c, false);
                        // Both stages succeeded: commit priority updates.
                        self.input_arbs[w].update(c);
                        self.output_arbs[c].update(w);
                        any = true;
                    }
                }
                if !any {
                    break;
                }
            }
            grants
        }

        fn reset(&mut self) {
            for a in &mut self.input_arbs {
                a.reset();
            }
            for a in &mut self.output_arbs {
                a.reset();
            }
        }
    }

    /// Scalar separable output-first allocator (`sep_of`).
    pub struct SeparableOutputFirst {
        output_arbs: Vec<Box<dyn Arbiter + Send>>,
        input_arbs: Vec<Box<dyn Arbiter + Send>>,
        iterations: usize,
    }

    impl SeparableOutputFirst {
        /// Scalar counterpart of [`super::SeparableOutputFirst::new`].
        pub fn new(requesters: usize, resources: usize, kind: ArbiterKind) -> Self {
            Self::with_iterations(requesters, resources, kind, 1)
        }

        /// Scalar counterpart of
        /// [`super::SeparableOutputFirst::with_iterations`].
        pub fn with_iterations(
            requesters: usize,
            resources: usize,
            kind: ArbiterKind,
            iterations: usize,
        ) -> Self {
            assert!(iterations >= 1);
            SeparableOutputFirst {
                output_arbs: (0..resources).map(|_| kind.build(requesters)).collect(),
                input_arbs: (0..requesters).map(|_| kind.build(resources)).collect(),
                iterations,
            }
        }
    }

    impl Allocator for SeparableOutputFirst {
        fn num_requesters(&self) -> usize {
            self.input_arbs.len()
        }

        fn num_resources(&self) -> usize {
            self.output_arbs.len()
        }

        fn allocate(&mut self, requests: &BitMatrix) -> BitMatrix {
            assert_eq!(requests.num_rows(), self.num_requesters());
            assert_eq!(requests.num_cols(), self.num_resources());
            let (nr, nc) = (self.num_requesters(), self.num_resources());
            let mut grants = BitMatrix::new(nr, nc);
            let mut row_free = Bits::ones(nr);
            let mut col_free = Bits::ones(nc);

            for _ in 0..self.iterations {
                // Stage 1: arbitration at each free resource over free
                // requesters.
                let mut stage1: Vec<Option<usize>> = vec![None; nc];
                for c in col_free.iter_set() {
                    let mut incoming = requests.col(c);
                    incoming.intersect_with(&row_free);
                    stage1[c] = self.output_arbs[c].arbitrate(&incoming);
                }
                // Stage 2: each requester picks among resources that chose
                // it.
                let mut any = false;
                for r in row_free.clone().iter_set() {
                    let mut won = Bits::new(nc);
                    for c in 0..nc {
                        if stage1[c] == Some(r) {
                            won.set(c, true);
                        }
                    }
                    if let Some(c) = self.input_arbs[r].arbitrate(&won) {
                        grants.set(r, c, true);
                        row_free.set(r, false);
                        col_free.set(c, false);
                        self.output_arbs[c].update(r);
                        self.input_arbs[r].update(c);
                        any = true;
                    }
                }
                if !any {
                    break;
                }
            }
            grants
        }

        fn reset(&mut self) {
            for a in &mut self.output_arbs {
                a.reset();
            }
            for a in &mut self.input_arbs {
                a.reset();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AllocatorKind;

    fn kinds() -> Vec<AllocatorKind> {
        vec![
            AllocatorKind::SepIfRr,
            AllocatorKind::SepIfMatrix,
            AllocatorKind::SepOfRr,
            AllocatorKind::SepOfMatrix,
        ]
    }

    #[test]
    fn grants_are_matchings() {
        for k in kinds() {
            let mut a = k.build(4, 4);
            let req = BitMatrix::from_entries(
                4,
                4,
                [(0, 0), (0, 1), (1, 0), (1, 1), (2, 2), (3, 2), (3, 3)],
            );
            for _ in 0..20 {
                let g = a.allocate(&req);
                assert!(g.is_matching_for(&req), "{k:?}\n{g:?}");
            }
        }
    }

    #[test]
    fn non_conflicting_requests_all_granted() {
        // §4.3.2: "all three allocator types are guaranteed to grant
        // non-conflicting requests".
        for k in kinds() {
            let mut a = k.build(4, 4);
            let req = BitMatrix::from_entries(4, 4, [(0, 2), (1, 0), (2, 3), (3, 1)]);
            let g = a.allocate(&req);
            assert_eq!(g, req, "{k:?}");
        }
    }

    #[test]
    fn input_first_can_miss_maximal_matching() {
        // The classic sep_if lockout from §4.3.2: requesters 0 and 1 both
        // want {0, 1}; with identical input-arbiter state both pick resource
        // 0 in stage 1, leaving resource 1 idle.
        let mut a = SeparableInputFirst::new(2, 2, ArbiterKind::RoundRobin);
        let req = BitMatrix::from_entries(2, 2, [(0, 0), (0, 1), (1, 0), (1, 1)]);
        let g = a.allocate(&req);
        assert_eq!(g.count_ones(), 1, "expected stage-1 collision\n{g:?}");
    }

    #[test]
    fn output_first_can_miss_maximal_matching() {
        // Dual situation for sep_of: resources 0 and 1 both pick requester 0
        // in stage 1; requester 1 gets nothing although resource 1 was free.
        let mut a = SeparableOutputFirst::new(2, 2, ArbiterKind::RoundRobin);
        let req = BitMatrix::from_entries(2, 2, [(0, 0), (0, 1), (1, 0), (1, 1)]);
        let g = a.allocate(&req);
        assert_eq!(g.count_ones(), 1, "expected stage-1 collision\n{g:?}");
    }

    #[test]
    fn second_iteration_repairs_lockout() {
        for (label, mut a) in [
            (
                "if",
                Box::new(SeparableInputFirst::with_iterations(
                    2,
                    2,
                    ArbiterKind::RoundRobin,
                    2,
                )) as Box<dyn Allocator>,
            ),
            (
                "of",
                Box::new(SeparableOutputFirst::with_iterations(
                    2,
                    2,
                    ArbiterKind::RoundRobin,
                    2,
                )),
            ),
        ] {
            let req = BitMatrix::from_entries(2, 2, [(0, 0), (0, 1), (1, 0), (1, 1)]);
            let g = a.allocate(&req);
            assert_eq!(g.count_ones(), 2, "sep_{label} with 2 iterations");
        }
    }

    #[test]
    fn persistent_conflict_rotates_fairly() {
        for k in kinds() {
            let mut a = k.build(2, 1);
            let req = BitMatrix::from_entries(2, 1, [(0, 0), (1, 0)]);
            let mut counts = [0usize; 2];
            for _ in 0..10 {
                let g = a.allocate(&req);
                assert_eq!(g.count_ones(), 1);
                let (r, _) = g.iter_set().next().unwrap();
                counts[r] += 1;
            }
            assert_eq!(counts, [5, 5], "{k:?} unfair: {counts:?}");
        }
    }

    #[test]
    fn losing_stage1_winner_retains_priority() {
        // iSLIP rule consequence: a requester whose stage-1 pick loses stage
        // 2 keeps requesting the same resource and eventually wins it.
        let mut a = SeparableInputFirst::new(2, 2, ArbiterKind::RoundRobin);
        // Requester 0 wants only resource 0; requester 1 wants {0,1}.
        let req = BitMatrix::from_entries(2, 2, [(0, 0), (1, 0), (1, 1)]);
        let mut got_each = [false; 2];
        for _ in 0..6 {
            let g = a.allocate(&req);
            for (r, _) in g.iter_set() {
                got_each[r] = true;
            }
        }
        assert!(got_each[0] && got_each[1], "starvation: {got_each:?}");
    }

    #[test]
    fn rectangular_shapes_supported() {
        for k in kinds() {
            let mut a = k.build(3, 5);
            let req = BitMatrix::from_entries(3, 5, [(0, 4), (1, 4), (2, 0)]);
            let g = a.allocate(&req);
            assert!(g.is_matching_for(&req), "{k:?}");
            assert_eq!(g.count_ones(), 2);
        }
    }

    #[test]
    fn multi_iteration_kernel_matches_reference() {
        // The iterative-refinement ablation path must stay grant-identical
        // too: drive kernel and scalar with 3 iterations on a fixed stream.
        for kind in [ArbiterKind::RoundRobin, ArbiterKind::Matrix] {
            let mut kif = SeparableInputFirst::with_iterations(5, 5, kind, 3);
            let mut rif = reference::SeparableInputFirst::with_iterations(5, 5, kind, 3);
            let mut kof = SeparableOutputFirst::with_iterations(5, 5, kind, 3);
            let mut rof = reference::SeparableOutputFirst::with_iterations(5, 5, kind, 3);
            let mut x = 0x2545f4914f6cdd1du64;
            for t in 0..200 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let bits = x >> 20;
                let req = BitMatrix::from_entries(
                    5,
                    5,
                    (0..25)
                        .filter(|i| bits >> i & 1 != 0)
                        .map(|i| (i / 5, i % 5)),
                );
                assert_eq!(
                    kif.allocate(&req),
                    rif.allocate(&req),
                    "sep_if {kind:?} t={t}"
                );
                assert_eq!(
                    kof.allocate(&req),
                    rof.allocate(&req),
                    "sep_of {kind:?} t={t}"
                );
            }
        }
    }
}
