#![forbid(unsafe_code)]
//! Allocator architectures for network-on-chip routers.
//!
//! This crate is the core contribution of the reproduction of Becker &
//! Dally, *Allocator Implementations for Network-on-Chip Routers* (SC '09).
//! It provides cycle-level behavioural models of:
//!
//! * the three general allocator architectures of §2 — separable
//!   input-first ([`separable::SeparableInputFirst`]), separable
//!   output-first ([`separable::SeparableOutputFirst`]) and wavefront
//!   ([`wavefront::WavefrontAllocator`]) — plus the maximum-size
//!   augmenting-path allocator ([`maxsize::MaxSizeAllocator`]) used as the
//!   matching-quality upper bound;
//! * VC allocators (§4), in both the conventional dense form
//!   ([`vc::DenseVcAllocator`]) and the paper's **sparse** form
//!   ([`vc::SparseVcAllocator`]) that exploits the `V = M×R×C` class
//!   structure ([`vc::VcAllocSpec`]);
//! * switch allocators (§5.1) with the one-VC-per-input-port constraint
//!   ([`switch`]);
//! * speculative switch allocation (§5.2) with the conventional and the
//!   paper's **pessimistic** masking schemes ([`spec`]).
//!
//! Hardware cost (delay/area/power) of the same microarchitectures is
//! modeled by the `noc-hw` crate; network-level behaviour by `noc-sim`.

pub mod alloc;
pub mod augmenting;
pub mod matrix;
pub mod maxsize;
pub mod separable;
pub mod spec;
pub mod switch;
pub mod vc;
pub mod wavefront;

pub use alloc::{Allocator, AllocatorKind};
pub use augmenting::AugmentingPathAllocator;
pub use matrix::BitMatrix;
pub use maxsize::{max_matching, max_matching_assignment, MaxSizeAllocator};
pub use separable::{SeparableInputFirst, SeparableOutputFirst};
pub use spec::{SpecAllocResult, SpecMode, SpeculativeSwitchAllocator};
pub use switch::{
    validate_switch_grants, SwitchAllocator, SwitchAllocatorKind, SwitchGrant, SwitchRequests,
};
pub use vc::{
    validate_vc_grants, DenseVcAllocator, MatrixVcAllocator, OutVc, SeparableVcAllocator,
    SparseVcAllocator, SpecError, VcAllocSpec, VcAllocator, VcRequest,
};
pub use wavefront::{DiagonalPolicy, WavefrontAllocator};
