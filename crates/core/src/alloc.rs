//! The general allocator abstraction (§2 of the paper).

use crate::BitMatrix;

/// An allocator matches `num_requesters` requesters to `num_resources`
/// resources each cycle.
///
/// Given a request matrix, [`Allocator::allocate`] returns a grant matrix
/// that is a *matching* (see [`BitMatrix::is_matching_for`]): grants are a
/// subset of requests, with at most one grant per row and per column.
/// `allocate` also advances the allocator's internal priority state
/// according to its fairness rule, so successive calls with identical
/// requests rotate grants among contenders.
pub trait Allocator {
    /// Number of requester rows this allocator was built for.
    fn num_requesters(&self) -> usize;

    /// Number of resource columns this allocator was built for.
    fn num_resources(&self) -> usize;

    /// Computes a matching for `requests` and updates priority state.
    fn allocate(&mut self, requests: &BitMatrix) -> BitMatrix;

    /// [`Allocator::allocate`] into a caller-owned grant matrix, so a
    /// per-cycle caller can reuse one scratch matrix and never allocate.
    /// The matrix must match the allocator's dimensions; it is cleared
    /// first. Implementations with a zero-alloc steady state override this;
    /// the default falls back to `allocate`.
    fn allocate_into(&mut self, requests: &BitMatrix, grants: &mut BitMatrix) {
        *grants = self.allocate(requests);
    }

    /// Restores power-on priority state.
    fn reset(&mut self);
}

/// The allocator architectures evaluated in the paper, tagged with the
/// arbiter kind used by separable variants (figure legends `sep_if/m`,
/// `sep_if/rr`, `sep_of/m`, `sep_of/rr`, `wf/rr`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AllocatorKind {
    /// Separable input-first with matrix arbiters (`sep_if/m`).
    SepIfMatrix,
    /// Separable input-first with round-robin arbiters (`sep_if/rr`).
    SepIfRr,
    /// Separable output-first with matrix arbiters (`sep_of/m`).
    SepOfMatrix,
    /// Separable output-first with round-robin arbiters (`sep_of/rr`).
    SepOfRr,
    /// Wavefront allocator (`wf/rr`; the `rr` refers only to the round-robin
    /// pre-selection arbiters used alongside it in switch allocation).
    Wavefront,
    /// Maximum-size (augmenting-path) allocator — the quality upper bound of
    /// §2.3, not a realistic hardware design point.
    MaxSize,
}

impl AllocatorKind {
    /// Builds and runs an allocator in a few lines:
    ///
    /// ```
    /// use noc_core::{AllocatorKind, BitMatrix};
    ///
    /// let requests = BitMatrix::from_entries(4, 4, [(0, 0), (0, 1), (1, 0), (3, 2)]);
    /// let mut wf = AllocatorKind::Wavefront.build(4, 4);
    /// let grants = wf.allocate(&requests);
    /// assert!(grants.is_matching_for(&requests));
    /// // Maximal (nothing can be added) but not maximum: the wavefront
    /// // grants (0,0) on its priority diagonal, blocking (0,1) and (1,0).
    /// assert!(grants.is_maximal_for(&requests));
    /// assert_eq!(grants.count_ones(), 2);
    ///
    /// // The maximum-size reference finds the 3-grant matching.
    /// let mut ms = AllocatorKind::MaxSize.build(4, 4);
    /// assert_eq!(ms.allocate(&requests).count_ones(), 3);
    /// ```
    ///
    /// All kinds the paper plots in its cost figures.
    pub const COST_FIGURE_KINDS: [AllocatorKind; 5] = [
        AllocatorKind::SepIfMatrix,
        AllocatorKind::SepIfRr,
        AllocatorKind::SepOfMatrix,
        AllocatorKind::SepOfRr,
        AllocatorKind::Wavefront,
    ];

    /// The three architectures compared in the quality/performance figures.
    pub const QUALITY_FIGURE_KINDS: [AllocatorKind; 3] = [
        AllocatorKind::SepIfRr,
        AllocatorKind::SepOfRr,
        AllocatorKind::Wavefront,
    ];

    /// Instantiates a `requesters × resources` allocator of this kind.
    pub fn build(self, requesters: usize, resources: usize) -> Box<dyn Allocator + Send> {
        use noc_arbiter::ArbiterKind::{Matrix, RoundRobin};
        match self {
            AllocatorKind::SepIfMatrix => Box::new(crate::separable::SeparableInputFirst::new(
                requesters, resources, Matrix,
            )),
            AllocatorKind::SepIfRr => Box::new(crate::separable::SeparableInputFirst::new(
                requesters, resources, RoundRobin,
            )),
            AllocatorKind::SepOfMatrix => Box::new(crate::separable::SeparableOutputFirst::new(
                requesters, resources, Matrix,
            )),
            AllocatorKind::SepOfRr => Box::new(crate::separable::SeparableOutputFirst::new(
                requesters, resources, RoundRobin,
            )),
            AllocatorKind::Wavefront => Box::new(crate::wavefront::WavefrontAllocator::new(
                requesters, resources,
            )),
            AllocatorKind::MaxSize => {
                Box::new(crate::maxsize::MaxSizeAllocator::new(requesters, resources))
            }
        }
    }

    /// Instantiates the scalar-reference predecessor of this kind: the
    /// element-wise implementation each bit kernel was derived from, kept
    /// alive in the per-module `reference` submodules. The differential
    /// test layer drives this against [`AllocatorKind::build`] and asserts
    /// grant-identical behaviour; it is not a fast path.
    pub fn build_reference(self, requesters: usize, resources: usize) -> Box<dyn Allocator + Send> {
        use noc_arbiter::ArbiterKind::{Matrix, RoundRobin};
        match self {
            AllocatorKind::SepIfMatrix => {
                Box::new(crate::separable::reference::SeparableInputFirst::new(
                    requesters, resources, Matrix,
                ))
            }
            AllocatorKind::SepIfRr => {
                Box::new(crate::separable::reference::SeparableInputFirst::new(
                    requesters, resources, RoundRobin,
                ))
            }
            AllocatorKind::SepOfMatrix => {
                Box::new(crate::separable::reference::SeparableOutputFirst::new(
                    requesters, resources, Matrix,
                ))
            }
            AllocatorKind::SepOfRr => {
                Box::new(crate::separable::reference::SeparableOutputFirst::new(
                    requesters, resources, RoundRobin,
                ))
            }
            AllocatorKind::Wavefront => Box::new(
                crate::wavefront::reference::WavefrontAllocator::new(requesters, resources),
            ),
            AllocatorKind::MaxSize => {
                Box::new(crate::maxsize::MaxSizeAllocator::new(requesters, resources))
            }
        }
    }

    /// Name used in the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            AllocatorKind::SepIfMatrix => "sep_if/m",
            AllocatorKind::SepIfRr => "sep_if/rr",
            AllocatorKind::SepOfMatrix => "sep_of/m",
            AllocatorKind::SepOfRr => "sep_of/rr",
            AllocatorKind::Wavefront => "wf/rr",
            AllocatorKind::MaxSize => "maxsize",
        }
    }

    /// Architecture family label without the arbiter suffix (`sep_if`,
    /// `sep_of`, `wf`), as used in the quality figures.
    pub fn family(self) -> &'static str {
        match self {
            AllocatorKind::SepIfMatrix | AllocatorKind::SepIfRr => "sep_if",
            AllocatorKind::SepOfMatrix | AllocatorKind::SepOfRr => "sep_of",
            AllocatorKind::Wavefront => "wf",
            AllocatorKind::MaxSize => "maxsize",
        }
    }
}
