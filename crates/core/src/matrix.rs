//! Request and grant matrices for allocation.

use noc_arbiter::Bits;

/// A boolean requester × resource matrix.
///
/// Rows are requesters, columns are resources; a set entry `(r, c)` means
/// requester `r` wants resource `c` (in a request matrix) or has been granted
/// it (in a grant matrix). Rows are stored as [`Bits`] so the separable
/// allocators can hand whole rows/columns to arbiters without copying bit by
/// bit.
#[derive(Clone, PartialEq, Eq)]
pub struct BitMatrix {
    rows: Vec<Bits>,
    cols: usize,
}

impl BitMatrix {
    /// Creates an all-zero `rows × cols` matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        BitMatrix {
            rows: (0..rows).map(|_| Bits::new(cols)).collect(),
            cols,
        }
    }

    /// Builds a matrix from `(row, col)` entries.
    pub fn from_entries(
        rows: usize,
        cols: usize,
        entries: impl IntoIterator<Item = (usize, usize)>,
    ) -> Self {
        let mut m = BitMatrix::new(rows, cols);
        for (r, c) in entries {
            m.set(r, c, true);
        }
        m
    }

    /// Number of requester rows.
    #[inline]
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of resource columns.
    #[inline]
    pub fn num_cols(&self) -> usize {
        self.cols
    }

    /// Reads entry `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> bool {
        self.rows[r].get(c)
    }

    /// Writes entry `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: bool) {
        self.rows[r].set(c, v);
    }

    /// Borrow row `r` as a bit vector over resources.
    #[inline]
    pub fn row(&self, r: usize) -> &Bits {
        &self.rows[r]
    }

    /// Mutable access to row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut Bits {
        &mut self.rows[r]
    }

    /// Materializes column `c` as a bit vector over requesters.
    pub fn col(&self, c: usize) -> Bits {
        let mut b = Bits::new(self.rows.len());
        for (r, row) in self.rows.iter().enumerate() {
            if row.get(c) {
                b.set(r, true);
            }
        }
        b
    }

    /// Total number of set entries.
    pub fn count_ones(&self) -> usize {
        self.rows.iter().map(Bits::count_ones).sum()
    }

    /// True if no entry is set.
    pub fn is_zero(&self) -> bool {
        self.rows.iter().all(Bits::is_zero)
    }

    /// Clears all entries.
    pub fn clear(&mut self) {
        for r in &mut self.rows {
            r.clear();
        }
    }

    /// Iterator over set `(row, col)` entries in row-major order.
    pub fn iter_set(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.rows
            .iter()
            .enumerate()
            .flat_map(|(r, row)| row.iter_set().map(move |c| (r, c)))
    }

    /// True if every set entry of `self` is also set in `other`.
    pub fn is_subset_of(&self, other: &BitMatrix) -> bool {
        assert_eq!(self.num_rows(), other.num_rows());
        assert_eq!(self.num_cols(), other.num_cols());
        self.rows
            .iter()
            .zip(&other.rows)
            .all(|(a, b)| a.is_subset_of(b))
    }

    /// True if `self` is a *matching*: a subset of `requests` with at most
    /// one set entry per row and per column (the three conditions of §2).
    pub fn is_matching_for(&self, requests: &BitMatrix) -> bool {
        if !self.is_subset_of(requests) {
            return false;
        }
        if self.rows.iter().any(|r| r.count_ones() > 1) {
            return false;
        }
        let mut col_used = Bits::new(self.cols);
        for row in &self.rows {
            if let Some(c) = row.first_set() {
                if col_used.get(c) {
                    return false;
                }
                col_used.set(c, true);
            }
        }
        true
    }

    /// True if `self` is a *maximal* matching for `requests`: no further
    /// request could be granted without revoking an existing grant.
    pub fn is_maximal_for(&self, requests: &BitMatrix) -> bool {
        if !self.is_matching_for(requests) {
            return false;
        }
        let mut col_used = Bits::new(self.cols);
        for row in &self.rows {
            if let Some(c) = row.first_set() {
                col_used.set(c, true);
            }
        }
        for (r, row) in self.rows.iter().enumerate() {
            if row.is_zero() {
                // Unmatched requester: every resource it wants must be taken.
                for c in requests.row(r).iter_set() {
                    if !col_used.get(c) {
                        return false;
                    }
                }
            }
        }
        true
    }
}

impl std::fmt::Debug for BitMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "BitMatrix {}x{} [", self.rows.len(), self.cols)?;
        for row in &self.rows {
            write!(f, "  ")?;
            for c in 0..self.cols {
                write!(f, "{}", if row.get(c) { '1' } else { '.' })?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_set_get() {
        let mut m = BitMatrix::new(3, 5);
        m.set(0, 4, true);
        m.set(2, 0, true);
        assert!(m.get(0, 4));
        assert!(!m.get(1, 2));
        assert_eq!(m.count_ones(), 2);
        assert_eq!(m.iter_set().collect::<Vec<_>>(), vec![(0, 4), (2, 0)]);
    }

    #[test]
    fn col_extraction() {
        let m = BitMatrix::from_entries(4, 3, [(0, 1), (2, 1), (3, 0)]);
        assert_eq!(m.col(1).iter_set().collect::<Vec<_>>(), vec![0, 2]);
        assert!(m.col(2).is_zero());
    }

    #[test]
    fn matching_validity() {
        let req = BitMatrix::from_entries(3, 3, [(0, 0), (0, 1), (1, 0), (2, 2)]);
        // Valid matching.
        let g = BitMatrix::from_entries(3, 3, [(0, 1), (1, 0), (2, 2)]);
        assert!(g.is_matching_for(&req));
        assert!(g.is_maximal_for(&req));
        // Grant without request.
        let g = BitMatrix::from_entries(3, 3, [(1, 1)]);
        assert!(!g.is_matching_for(&req));
        // Two grants in one row.
        let g = BitMatrix::from_entries(3, 3, [(0, 0), (0, 1)]);
        assert!(!g.is_matching_for(&req));
        // Two grants in one column.
        let g = BitMatrix::from_entries(3, 3, [(0, 0), (1, 0)]);
        assert!(!g.is_matching_for(&req));
    }

    #[test]
    fn maximality_detection() {
        let req = BitMatrix::from_entries(2, 2, [(0, 0), (0, 1), (1, 0)]);
        // Granting (0,0) blocks requester 1 entirely but leaves col 1 free
        // while requester 0 could have used it -> (0,0) alone is maximal?
        // Requester 0 is matched, requester 1 wants only col 0 (taken), so
        // yes: maximal but not maximum.
        let g = BitMatrix::from_entries(2, 2, [(0, 0)]);
        assert!(g.is_maximal_for(&req));
        // Empty grant is not maximal when requests exist.
        let g = BitMatrix::new(2, 2);
        assert!(!g.is_maximal_for(&req));
        // Maximum matching.
        let g = BitMatrix::from_entries(2, 2, [(0, 1), (1, 0)]);
        assert!(g.is_maximal_for(&req));
    }
}
