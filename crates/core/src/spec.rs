//! Speculative switch allocation (§5.2, Figure 9).
//!
//! Speculation lets head flits bid for crossbar access in the same cycle
//! they request an output VC, hiding the VC-allocation pipeline stage at low
//! load. Non-speculative and speculative requests go to two separate switch
//! allocators; speculative grants are then masked so they can never displace
//! non-speculative traffic:
//!
//! * **Conventional** (`spec_gnt`, Figure 9(a)): a speculative grant is
//!   discarded if any non-speculative *grant* uses the same input or output
//!   port. In hardware this costs two `P`-input reduction-OR trees plus a
//!   NOR/AND masking stage *after* the non-speculative allocator — it
//!   lengthens the critical path.
//! * **Pessimistic** (`spec_req`, Figure 9(b)): a speculative grant is
//!   discarded if any non-speculative *request* touches the same input or
//!   output port. Requests are available at the start of the cycle, so the
//!   mask is computed in parallel with allocation and only a final AND stage
//!   remains on the critical path — the delay reduction of §5.2, bought by
//!   discarding some viable speculations near saturation.

use crate::switch::{SwitchAllocator, SwitchAllocatorKind, SwitchGrant, SwitchRequests};

/// Speculation scheme, named as in the Figure 14 legends.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SpecMode {
    /// No speculation: speculative requests are ignored (`nonspec`).
    NonSpeculative,
    /// Mask speculative grants with non-speculative grants (`spec_gnt`).
    Conventional,
    /// Mask speculative grants with non-speculative requests (`spec_req`).
    Pessimistic,
}

impl SpecMode {
    /// Legend label used in Figure 14.
    pub fn label(self) -> &'static str {
        match self {
            SpecMode::NonSpeculative => "nonspec",
            SpecMode::Conventional => "spec_gnt",
            SpecMode::Pessimistic => "spec_req",
        }
    }

    /// The three schemes of Figure 14.
    pub const ALL: [SpecMode; 3] = [
        SpecMode::NonSpeculative,
        SpecMode::Conventional,
        SpecMode::Pessimistic,
    ];
}

/// Result of one speculative switch-allocation round.
#[derive(Clone, Debug, Default)]
pub struct SpecAllocResult {
    /// Grants to non-speculative requests (always honored).
    pub nonspec: Vec<SwitchGrant>,
    /// Speculative grants that survived masking. The router must still
    /// verify each against the same-cycle VC-allocation outcome; surviving
    /// grants here are only guaranteed not to conflict with `nonspec` on
    /// ports.
    pub spec: Vec<SwitchGrant>,
    /// Speculative grants discarded by the masking stage (misspeculation
    /// bookkeeping for the §5.2 efficiency analysis).
    pub masked: Vec<SwitchGrant>,
}

impl SpecAllocResult {
    /// Grant lists pre-sized to one grant per output port (the per-cycle
    /// worst case for each list), so reuse across cycles never reallocates.
    pub fn with_capacity(ports: usize) -> Self {
        SpecAllocResult {
            nonspec: Vec::with_capacity(ports),
            spec: Vec::with_capacity(ports),
            masked: Vec::with_capacity(ports),
        }
    }

    /// Empties all three grant lists, keeping their capacity for reuse.
    pub fn clear(&mut self) {
        self.nonspec.clear();
        self.spec.clear();
        self.masked.clear();
    }
}

/// Dual-allocator speculative switch allocator (Figure 9).
///
/// The masking stage is the Figure 9 AND gate verbatim: blocked input and
/// output ports are collected into two `u64` port masks and every
/// speculative grant is killed by a single AND-NOT
/// ([`noc_arbiter::bits::spec_kill`]) per side. The element-wise `Vec<bool>`
/// predecessor is kept as [`reference::mask_speculative`] for the
/// differential suite (and as the fallback for routers wider than 64
/// ports).
pub struct SpeculativeSwitchAllocator {
    nonspec: Box<dyn SwitchAllocator + Send>,
    spec: Box<dyn SwitchAllocator + Send>,
    mode: SpecMode,
}

impl SpeculativeSwitchAllocator {
    /// Builds both component allocators of the given architecture.
    pub fn new(kind: SwitchAllocatorKind, ports: usize, vcs: usize, mode: SpecMode) -> Self {
        SpeculativeSwitchAllocator {
            nonspec: kind.build(ports, vcs),
            spec: kind.build(ports, vcs),
            mode,
        }
    }

    /// [`SpeculativeSwitchAllocator::new`] over the scalar-reference switch
    /// allocators ([`SwitchAllocatorKind::build_reference`]) — the oracle
    /// side of the differential tests.
    pub fn new_reference(
        kind: SwitchAllocatorKind,
        ports: usize,
        vcs: usize,
        mode: SpecMode,
    ) -> Self {
        SpeculativeSwitchAllocator {
            nonspec: kind.build_reference(ports, vcs),
            spec: kind.build_reference(ports, vcs),
            mode,
        }
    }

    /// The active speculation scheme.
    pub fn mode(&self) -> SpecMode {
        self.mode
    }

    /// Router port count.
    pub fn ports(&self) -> usize {
        self.nonspec.ports()
    }

    /// VCs per port.
    pub fn vcs(&self) -> usize {
        self.nonspec.vcs()
    }

    /// Runs both allocators and applies the masking stage.
    pub fn allocate(
        &mut self,
        nonspec_reqs: &SwitchRequests,
        spec_reqs: &SwitchRequests,
    ) -> SpecAllocResult {
        let mut out = SpecAllocResult::default();
        self.allocate_into(nonspec_reqs, spec_reqs, &mut out);
        out
    }

    /// [`SpeculativeSwitchAllocator::allocate`] into a caller-owned result,
    /// reusing its grant buffers and the allocator's masking scratch so the
    /// per-cycle hot path performs no heap allocation at this level.
    pub fn allocate_into(
        &mut self,
        nonspec_reqs: &SwitchRequests,
        spec_reqs: &SwitchRequests,
        out: &mut SpecAllocResult,
    ) {
        out.clear();
        if !nonspec_reqs.is_empty() {
            self.nonspec.allocate_into(nonspec_reqs, &mut out.nonspec);
        }
        if self.mode == SpecMode::NonSpeculative {
            return;
        }
        if !spec_reqs.is_empty() {
            self.spec.allocate_into(spec_reqs, &mut out.spec);
        }
        if out.spec.is_empty() {
            return;
        }
        let ports = self.ports();
        if ports > 64 {
            reference::mask_speculative(self.mode, nonspec_reqs, out);
            return;
        }
        // Collect blocked ports into two u64 masks. A speculative grant set
        // is itself a matching, so projecting it onto port bit-vectors loses
        // nothing — the kill is one AND-NOT per side.
        let mut in_blocked = 0u64;
        let mut out_blocked = 0u64;
        match self.mode {
            SpecMode::Conventional => {
                for g in &out.nonspec {
                    in_blocked |= 1 << g.in_port;
                    out_blocked |= 1 << g.out_port;
                }
            }
            SpecMode::Pessimistic => {
                for p in 0..ports {
                    in_blocked |= (nonspec_reqs.input_active(p) as u64) << p;
                    out_blocked |= (nonspec_reqs.output_requested(p) as u64) << p;
                }
            }
            SpecMode::NonSpeculative => unreachable!(),
        }
        let mut spec_in = 0u64;
        let mut spec_out = 0u64;
        for g in &out.spec {
            spec_in |= 1 << g.in_port;
            spec_out |= 1 << g.out_port;
        }
        let alive_in = noc_arbiter::bits::spec_kill(spec_in, in_blocked);
        let alive_out = noc_arbiter::bits::spec_kill(spec_out, out_blocked);
        let SpecAllocResult { spec, masked, .. } = out;
        spec.retain(|g| {
            if alive_in >> g.in_port & 1 != 0 && alive_out >> g.out_port & 1 != 0 {
                true
            } else {
                masked.push(*g);
                false
            }
        });
    }

    /// Resets both component allocators.
    pub fn reset(&mut self) {
        self.nonspec.reset();
        self.spec.reset();
    }
}

/// Scalar predecessor of the AND-NOT masking kernel, kept as the
/// differential-testing oracle and the wide-router fallback.
pub mod reference {
    use super::{SpecAllocResult, SpecMode, SwitchRequests};

    /// Element-wise masking stage: per-port `Vec<bool>` blocked flags and a
    /// per-grant retain sweep. Moves masked grants from `out.spec` to
    /// `out.masked`, exactly like the `u64` kill in
    /// [`super::SpeculativeSwitchAllocator::allocate_into`].
    pub fn mask_speculative(
        mode: SpecMode,
        nonspec_reqs: &SwitchRequests,
        out: &mut SpecAllocResult,
    ) {
        let ports = nonspec_reqs.ports();
        let mut in_blocked = vec![false; ports];
        let mut out_blocked = vec![false; ports];
        match mode {
            SpecMode::Conventional => {
                for g in &out.nonspec {
                    in_blocked[g.in_port] = true;
                    out_blocked[g.out_port] = true;
                }
            }
            SpecMode::Pessimistic => {
                for p in 0..ports {
                    in_blocked[p] = nonspec_reqs.input_active(p);
                    out_blocked[p] = nonspec_reqs.output_requested(p);
                }
            }
            SpecMode::NonSpeculative => return,
        }
        let SpecAllocResult { spec, masked, .. } = out;
        spec.retain(|g| {
            if in_blocked[g.in_port] || out_blocked[g.out_port] {
                masked.push(*g);
                false
            } else {
                true
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_arbiter::ArbiterKind;
    use rand::{Rng, SeedableRng};

    const KIND: SwitchAllocatorKind = SwitchAllocatorKind::SepIf(ArbiterKind::RoundRobin);

    fn random_requests(rng: &mut impl Rng, p: usize, v: usize, rate: f64) -> SwitchRequests {
        let mut r = SwitchRequests::new(p, v);
        for i in 0..p {
            for vc in 0..v {
                if rng.gen_bool(rate) {
                    r.request(i, vc, rng.gen_range(0..p));
                }
            }
        }
        r
    }

    #[test]
    fn nonspec_mode_ignores_speculative_requests() {
        let mut a = SpeculativeSwitchAllocator::new(KIND, 4, 2, SpecMode::NonSpeculative);
        let ns = SwitchRequests::new(4, 2);
        let mut sp = SwitchRequests::new(4, 2);
        sp.request(0, 0, 1);
        let r = a.allocate(&ns, &sp);
        assert!(r.nonspec.is_empty() && r.spec.is_empty() && r.masked.is_empty());
    }

    #[test]
    fn surviving_spec_grants_never_conflict_with_nonspec() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        for mode in [SpecMode::Conventional, SpecMode::Pessimistic] {
            let mut a = SpeculativeSwitchAllocator::new(KIND, 5, 4, mode);
            for _ in 0..200 {
                let ns = random_requests(&mut rng, 5, 4, 0.3);
                let sp = random_requests(&mut rng, 5, 4, 0.3);
                let r = a.allocate(&ns, &sp);
                for sg in &r.spec {
                    for ng in &r.nonspec {
                        assert_ne!(sg.in_port, ng.in_port, "{mode:?}");
                        assert_ne!(sg.out_port, ng.out_port, "{mode:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn pessimistic_is_stricter_than_conventional() {
        // Every speculative grant surviving the pessimistic mask would also
        // survive the conventional mask (nonspec grants ⊆ nonspec requests
        // port-wise). Run both modes on identical request streams and check
        // the per-cycle surviving counts.
        let mut rng = rand::rngs::StdRng::seed_from_u64(32);
        let mut conv = SpeculativeSwitchAllocator::new(KIND, 5, 2, SpecMode::Conventional);
        let mut pess = SpeculativeSwitchAllocator::new(KIND, 5, 2, SpecMode::Pessimistic);
        let mut conv_total = 0usize;
        let mut pess_total = 0usize;
        for _ in 0..300 {
            let ns = random_requests(&mut rng, 5, 2, 0.4);
            let sp = random_requests(&mut rng, 5, 2, 0.4);
            conv_total += conv.allocate(&ns, &sp).spec.len();
            pess_total += pess.allocate(&ns, &sp).spec.len();
        }
        assert!(
            pess_total <= conv_total,
            "pessimistic ({pess_total}) kept more spec grants than conventional ({conv_total})"
        );
        assert!(conv_total > 0, "speculation never succeeded");
    }

    #[test]
    fn modes_agree_when_no_nonspec_traffic() {
        // With zero non-speculative requests the masks are empty and both
        // schemes pass identical speculative grants — the low-load regime
        // where §5.2 argues pessimism is free.
        let mut rng = rand::rngs::StdRng::seed_from_u64(33);
        let mut conv = SpeculativeSwitchAllocator::new(KIND, 4, 2, SpecMode::Conventional);
        let mut pess = SpeculativeSwitchAllocator::new(KIND, 4, 2, SpecMode::Pessimistic);
        let ns = SwitchRequests::new(4, 2);
        for _ in 0..100 {
            let sp = random_requests(&mut rng, 4, 2, 0.4);
            let gc = conv.allocate(&ns, &sp);
            let gp = pess.allocate(&ns, &sp);
            assert_eq!(gc.spec, gp.spec);
            assert!(gc.masked.is_empty() && gp.masked.is_empty());
        }
    }

    #[test]
    fn pessimistic_masks_on_request_even_if_grant_elsewhere() {
        // Input 0 nonspec-requests output 0; spec request at input 1 wants
        // output 0 too. Conventional: if nonspec grant goes to (0 -> 0),
        // spec (1 -> 0) is masked either way. Now let nonspec request (0 ->
        // 0) lose nothing — but make the spec grant target output 1, which
        // nobody nonspec-requests, from input 0 which *is* nonspec-active:
        // pessimistic masks it, conventional masks it too (input grant).
        // The distinguishing case: nonspec request exists at input 0 but its
        // grant fails (conflict), then conventional lets spec through while
        // pessimistic does not. Force that with two nonspec inputs fighting
        // for one output.
        let mut conv = SpeculativeSwitchAllocator::new(KIND, 3, 1, SpecMode::Conventional);
        let mut pess = SpeculativeSwitchAllocator::new(KIND, 3, 1, SpecMode::Pessimistic);
        let mut ns = SwitchRequests::new(3, 1);
        ns.request(0, 0, 2);
        ns.request(1, 0, 2); // loser at output 2 remains requesting
        let mut sp = SwitchRequests::new(3, 1);
        sp.request(2, 0, 1); // distinct input & output from all nonspec GRANTS
        let rc = conv.allocate(&ns, &sp);
        assert_eq!(rc.spec.len(), 1, "conventional should pass the spec grant");
        let rp = pess.allocate(&ns, &sp);
        assert_eq!(rp.spec.len(), 1, "output 1 and input 2 are request-free");

        // Now have the spec grant target output 2 (nonspec-requested but
        // possibly granted to input 0): both mask. And target input 1
        // (nonspec-active, but grant went to input 0): conventional passes,
        // pessimistic masks.
        let mut sp2 = SwitchRequests::new(3, 1);
        sp2.request(1, 0, 1);
        // Note: input 1 has both a nonspec and a spec request here; in the
        // router that never happens for the same VC, but the mask logic is
        // port-level and this is the §5.2 distinguishing case.
        let rc = conv.allocate(&ns, &sp2);
        let rp = pess.allocate(&ns, &sp2);
        // Conventional: nonspec grant is (0 or 1) -> 2. If grant went to 0,
        // spec (1 -> 1) survives; pessimistic always masks it.
        assert!(rp.spec.is_empty());
        assert_eq!(rc.spec.len() + rc.masked.len(), 1);
    }
}
