//! Switch allocators (§5.1).
//!
//! Switch allocation matches requests from the `V` input VCs at each of the
//! router's `P` input ports to crossbar output ports, under the constraint
//! that **at most one VC per input port** receives a grant (a port's crossbar
//! input can carry one flit per cycle). This extra constraint is what makes
//! switch allocators differ from canonical `P*V`-input allocators, and is
//! enforced structurally by all three implementations here, exactly as in
//! Figure 8.
//!
//! Each allocator exists twice: a `u64` mask kernel over [`ArbiterBank`]
//! state (used whenever `P <= 64` and `V <= 64`) and its scalar predecessor
//! in [`reference`], kept alive as the differential oracle and as the
//! fallback for wider configurations.

use crate::wavefront::WavefrontAllocator;
use crate::{Allocator, BitMatrix};
use noc_arbiter::{Arbiter, ArbiterBank, ArbiterKind, Bits};

/// Requests for one switch-allocation round: for every input VC, the output
/// port it wants this cycle (or `None` when idle).
#[derive(Clone, Debug)]
pub struct SwitchRequests {
    ports: usize,
    vcs: usize,
    req: Vec<Option<usize>>,
}

impl SwitchRequests {
    /// All-idle request set for a `ports`-port router with `vcs` VCs/port.
    pub fn new(ports: usize, vcs: usize) -> Self {
        SwitchRequests {
            ports,
            vcs,
            req: vec![None; ports * vcs],
        }
    }

    /// Router port count.
    pub fn ports(&self) -> usize {
        self.ports
    }

    /// VCs per port.
    pub fn vcs(&self) -> usize {
        self.vcs
    }

    /// Registers that VC `vc` at input `in_port` wants output `out_port`.
    pub fn request(&mut self, in_port: usize, vc: usize, out_port: usize) {
        assert!(in_port < self.ports && vc < self.vcs && out_port < self.ports);
        self.req[in_port * self.vcs + vc] = Some(out_port);
    }

    /// Drops every request, keeping the allocation for reuse next cycle.
    pub fn clear(&mut self) {
        self.req.fill(None);
    }

    /// The output port requested by `(in_port, vc)`, if any.
    pub fn get(&self, in_port: usize, vc: usize) -> Option<usize> {
        self.req[in_port * self.vcs + vc]
    }

    /// True if no VC has a request.
    pub fn is_empty(&self) -> bool {
        self.req.iter().all(Option::is_none)
    }

    /// Bit vector over VCs at `in_port` that request *any* output.
    pub fn active_vcs(&self, in_port: usize) -> Bits {
        let mut b = Bits::new(self.vcs);
        for v in 0..self.vcs {
            if self.req[in_port * self.vcs + v].is_some() {
                b.set(v, true);
            }
        }
        b
    }

    /// [`SwitchRequests::active_vcs`] as a kernel word (`vcs <= 64`).
    #[inline]
    pub fn active_vcs_word(&self, in_port: usize) -> u64 {
        debug_assert!(self.vcs <= 64);
        let mut w = 0u64;
        for v in 0..self.vcs {
            if self.req[in_port * self.vcs + v].is_some() {
                w |= 1 << v;
            }
        }
        w
    }

    /// Bit vector over VCs at `in_port` requesting `out_port` specifically.
    pub fn vcs_for_output(&self, in_port: usize, out_port: usize) -> Bits {
        let mut b = Bits::new(self.vcs);
        for v in 0..self.vcs {
            if self.req[in_port * self.vcs + v] == Some(out_port) {
                b.set(v, true);
            }
        }
        b
    }

    /// [`SwitchRequests::vcs_for_output`] as a kernel word (`vcs <= 64`).
    #[inline]
    pub fn vcs_for_output_word(&self, in_port: usize, out_port: usize) -> u64 {
        debug_assert!(self.vcs <= 64);
        let mut w = 0u64;
        for v in 0..self.vcs {
            if self.req[in_port * self.vcs + v] == Some(out_port) {
                w |= 1 << v;
            }
        }
        w
    }

    /// The port-level request matrix: entry `(i, o)` set iff any VC at input
    /// `i` requests output `o` (the "combined and forwarded" requests of the
    /// output-first and wavefront implementations).
    pub fn port_matrix(&self) -> BitMatrix {
        let mut m = BitMatrix::new(self.ports, self.ports);
        self.port_matrix_into(&mut m);
        m
    }

    /// Fills a caller-owned `P × P` matrix with the port-level requests —
    /// the reusable-scratch form of [`SwitchRequests::port_matrix`].
    pub fn port_matrix_into(&self, m: &mut BitMatrix) {
        assert_eq!(m.num_rows(), self.ports);
        assert_eq!(m.num_cols(), self.ports);
        m.clear();
        for i in 0..self.ports {
            for v in 0..self.vcs {
                if let Some(o) = self.req[i * self.vcs + v] {
                    m.set(i, o, true);
                }
            }
        }
    }

    /// True if any VC at `in_port` has a request (used by the pessimistic
    /// speculation mask).
    pub fn input_active(&self, in_port: usize) -> bool {
        (0..self.vcs).any(|v| self.req[in_port * self.vcs + v].is_some())
    }

    /// True if any VC at any input requests `out_port`.
    pub fn output_requested(&self, out_port: usize) -> bool {
        self.req.contains(&Some(out_port))
    }
}

/// One switch grant: input `(in_port, vc)` may traverse the crossbar to
/// `out_port` next cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SwitchGrant {
    /// Granted input port.
    pub in_port: usize,
    /// Granted VC at that input port.
    pub vc: usize,
    /// Crossbar output the flit will traverse to.
    pub out_port: usize,
}

/// A switch allocator for a `P`-port router with `V` VCs per port.
///
/// Guarantees on the returned grant set: every grant corresponds to a
/// request; at most one grant per input port; at most one grant per output
/// port.
pub trait SwitchAllocator: Send {
    /// Router port count `P`.
    fn ports(&self) -> usize;

    /// VCs per port `V`.
    fn vcs(&self) -> usize;

    /// Performs one switch-allocation round and updates priority state.
    fn allocate(&mut self, requests: &SwitchRequests) -> Vec<SwitchGrant>;

    /// Allocation round writing grants into a caller-owned buffer, so hot
    /// paths can reuse capacity across cycles. Must produce exactly the
    /// grants (and priority updates) of [`SwitchAllocator::allocate`].
    fn allocate_into(&mut self, requests: &SwitchRequests, out: &mut Vec<SwitchGrant>) {
        out.clear();
        out.extend(self.allocate(requests));
    }

    /// Restores power-on priority state.
    fn reset(&mut self);
}

/// The switch-allocator architectures of Figure 8, with arbiter choice.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SwitchAllocatorKind {
    /// Separable input-first (Figure 8(a)).
    SepIf(ArbiterKind),
    /// Separable output-first (Figure 8(b)).
    SepOf(ArbiterKind),
    /// Wavefront with round-robin VC pre-selection (Figure 8(c)).
    Wavefront,
}

impl SwitchAllocatorKind {
    /// Instantiates the allocator for a `ports`-port, `vcs`-VC router.
    pub fn build(self, ports: usize, vcs: usize) -> Box<dyn SwitchAllocator + Send> {
        match self {
            SwitchAllocatorKind::SepIf(k) => Box::new(SepIfSwitchAllocator::new(ports, vcs, k)),
            SwitchAllocatorKind::SepOf(k) => Box::new(SepOfSwitchAllocator::new(ports, vcs, k)),
            SwitchAllocatorKind::Wavefront => Box::new(WavefrontSwitchAllocator::new(ports, vcs)),
        }
    }

    /// Instantiates the scalar-reference predecessor (see [`reference`]);
    /// driven against [`SwitchAllocatorKind::build`] by the differential
    /// test layer.
    pub fn build_reference(self, ports: usize, vcs: usize) -> Box<dyn SwitchAllocator + Send> {
        match self {
            SwitchAllocatorKind::SepIf(k) => {
                Box::new(reference::SepIfSwitchAllocator::new(ports, vcs, k))
            }
            SwitchAllocatorKind::SepOf(k) => {
                Box::new(reference::SepOfSwitchAllocator::new(ports, vcs, k))
            }
            SwitchAllocatorKind::Wavefront => {
                Box::new(reference::WavefrontSwitchAllocator::new(ports, vcs))
            }
        }
    }

    /// Figure-legend label (`sep_if/rr`, `wf/rr`, ...).
    pub fn label(self) -> String {
        match self {
            SwitchAllocatorKind::SepIf(k) => format!("sep_if/{}", k.short_name()),
            SwitchAllocatorKind::SepOf(k) => format!("sep_of/{}", k.short_name()),
            SwitchAllocatorKind::Wavefront => "wf/rr".to_string(),
        }
    }
}

fn kernel_fits(ports: usize, vcs: usize) -> bool {
    ports <= 64 && vcs <= 64
}

/// Separable input-first switch allocator (Figure 8(a)).
///
/// A `V:1` arbiter per input port first picks a winning VC among all active
/// VCs; the winner's request is forwarded to its output port, where a `P:1`
/// arbiter selects among competing inputs. Output arbiters directly drive
/// the crossbar selects in hardware.
pub struct SepIfSwitchAllocator {
    ports: usize,
    vcs: usize,
    inner: SepIfSwInner,
}

enum SepIfSwInner {
    Kernel {
        /// `V:1` arbiter per input port.
        input: ArbiterBank,
        /// `P:1` arbiter per output port.
        output: ArbiterBank,
        /// Stage-1 scratch, `(vc, out_port)` per input port; kept across
        /// calls so steady-state allocation stays at zero.
        winners: Vec<Option<(usize, usize)>>,
        /// Forwarded-request accumulator: `incoming[o]` bit `i` set iff
        /// input `i`'s stage-1 winner targets output `o`. All-zero between
        /// calls (stage 2 clears exactly the slots stage 1 set).
        incoming: Vec<u64>,
    },
    Reference(reference::SepIfSwitchAllocator),
}

impl SepIfSwitchAllocator {
    /// Builds the allocator with the given arbiter kind in both stages.
    pub fn new(ports: usize, vcs: usize, kind: ArbiterKind) -> Self {
        let inner = if kernel_fits(ports, vcs) {
            SepIfSwInner::Kernel {
                input: ArbiterBank::new(kind, ports, vcs),
                output: ArbiterBank::new(kind, ports, ports),
                winners: Vec::with_capacity(ports),
                incoming: vec![0; ports],
            }
        } else {
            SepIfSwInner::Reference(reference::SepIfSwitchAllocator::new(ports, vcs, kind))
        };
        SepIfSwitchAllocator { ports, vcs, inner }
    }
}

impl SwitchAllocator for SepIfSwitchAllocator {
    fn ports(&self) -> usize {
        self.ports
    }

    fn vcs(&self) -> usize {
        self.vcs
    }

    fn allocate(&mut self, requests: &SwitchRequests) -> Vec<SwitchGrant> {
        let mut grants = Vec::new();
        self.allocate_into(requests, &mut grants);
        grants
    }

    fn allocate_into(&mut self, requests: &SwitchRequests, out: &mut Vec<SwitchGrant>) {
        assert_eq!(requests.ports(), self.ports);
        assert_eq!(requests.vcs(), self.vcs);
        out.clear();
        if requests.is_empty() {
            return;
        }
        match &mut self.inner {
            SepIfSwInner::Reference(r) => r.allocate_into(requests, out),
            SepIfSwInner::Kernel {
                input,
                output,
                winners,
                incoming,
            } => {
                // Stage 1: winning VC per input port.
                winners.clear();
                let mut pending = 0u64; // outputs with >= 1 forwarded request
                for i in 0..self.ports {
                    // An arbitration winner always comes from the active-VC
                    // mask, so its request is present.
                    let w = input
                        .arbitrate(i, requests.active_vcs_word(i))
                        .and_then(|v| requests.get(i, v).map(|o| (v, o)));
                    if let Some((_, o)) = w {
                        incoming[o] |= 1 << i;
                        pending |= 1 << o;
                    }
                    winners.push(w);
                }
                // Stage 2: arbitration among forwarded requests at each
                // output, in the same ascending output order as the scalar
                // reference (outputs with no contenders grant nothing
                // there, so skipping them is equivalent).
                while pending != 0 {
                    let o = pending.trailing_zeros() as usize;
                    pending &= pending - 1;
                    let inc = incoming[o];
                    incoming[o] = 0;
                    if let Some(i) = output.arbitrate(o, inc) {
                        let Some((v, _)) = winners[i] else { continue };
                        out.push(SwitchGrant {
                            in_port: i,
                            vc: v,
                            out_port: o,
                        });
                        // Both stages succeeded: commit priority updates.
                        input.update(i, v);
                        output.update(o, i);
                    }
                }
            }
        }
    }

    fn reset(&mut self) {
        match &mut self.inner {
            SepIfSwInner::Kernel { input, output, .. } => {
                input.reset();
                output.reset();
            }
            SepIfSwInner::Reference(r) => r.reset(),
        }
    }
}

/// Separable output-first switch allocator (Figure 8(b)).
///
/// Requests from all input VCs are combined per (input, output) pair and
/// forwarded; each output's `P:1` arbiter picks a winning input. An input
/// may win several outputs, so a `V:1` arbitration among the VCs that can
/// use any granted output selects the single winning VC; the other outputs
/// granted to that input go unused this cycle (and their arbiters keep
/// their priority, per the update rule).
pub struct SepOfSwitchAllocator {
    ports: usize,
    vcs: usize,
    inner: SepOfSwInner,
}

enum SepOfSwInner {
    Kernel {
        /// `P:1` arbiter per output port.
        output: ArbiterBank,
        /// `V:1` arbiter per input port.
        vc: ArbiterBank,
        /// Combined request columns: `colw[o]` bit `i` set iff any VC at
        /// input `i` requests output `o`. All-zero between calls.
        colw: Vec<u64>,
        /// Stage-1 wins per input: `won[i]` bit `o` set iff output `o`
        /// chose input `i`. All-zero between calls.
        won: Vec<u64>,
    },
    Reference(reference::SepOfSwitchAllocator),
}

impl SepOfSwitchAllocator {
    /// Builds the allocator with the given arbiter kind in both stages.
    pub fn new(ports: usize, vcs: usize, kind: ArbiterKind) -> Self {
        let inner = if kernel_fits(ports, vcs) {
            SepOfSwInner::Kernel {
                output: ArbiterBank::new(kind, ports, ports),
                vc: ArbiterBank::new(kind, ports, vcs),
                colw: vec![0; ports],
                won: vec![0; ports],
            }
        } else {
            SepOfSwInner::Reference(reference::SepOfSwitchAllocator::new(ports, vcs, kind))
        };
        SepOfSwitchAllocator { ports, vcs, inner }
    }
}

impl SwitchAllocator for SepOfSwitchAllocator {
    fn ports(&self) -> usize {
        self.ports
    }

    fn vcs(&self) -> usize {
        self.vcs
    }

    fn allocate(&mut self, requests: &SwitchRequests) -> Vec<SwitchGrant> {
        let mut grants = Vec::new();
        self.allocate_into(requests, &mut grants);
        grants
    }

    fn allocate_into(&mut self, requests: &SwitchRequests, out: &mut Vec<SwitchGrant>) {
        assert_eq!(requests.ports(), self.ports);
        assert_eq!(requests.vcs(), self.vcs);
        out.clear();
        if requests.is_empty() {
            return;
        }
        match &mut self.inner {
            SepOfSwInner::Reference(r) => r.allocate_into(requests, out),
            SepOfSwInner::Kernel {
                output,
                vc,
                colw,
                won,
            } => {
                // Combine per-VC requests into port-level columns.
                let mut active = 0u64; // outputs with >= 1 requesting input
                for i in 0..self.ports {
                    for v in 0..self.vcs {
                        if let Some(o) = requests.get(i, v) {
                            colw[o] |= 1 << i;
                            active |= 1 << o;
                        }
                    }
                }
                // Stage 1: each output arbitrates among requesting inputs.
                let mut pending = 0u64; // inputs chosen by >= 1 output
                while active != 0 {
                    let o = active.trailing_zeros() as usize;
                    active &= active - 1;
                    let inc = colw[o];
                    colw[o] = 0;
                    if let Some(i) = output.arbitrate(o, inc) {
                        won[i] |= 1 << o;
                        pending |= 1 << i;
                    }
                }
                // Stage 2: each input picks a winning VC among those whose
                // requested output was granted to it (ascending input
                // order, like the scalar sweep over all inputs).
                while pending != 0 {
                    let i = pending.trailing_zeros() as usize;
                    pending &= pending - 1;
                    let wmask = won[i];
                    won[i] = 0;
                    let mut cand = 0u64;
                    for v in 0..self.vcs {
                        if let Some(o) = requests.get(i, v) {
                            if wmask >> o & 1 != 0 {
                                cand |= 1 << v;
                            }
                        }
                    }
                    // A winner always comes from the candidate mask, which
                    // is built only from VCs with live requests.
                    if let Some((v, o)) = vc
                        .arbitrate(i, cand)
                        .and_then(|v| requests.get(i, v).map(|o| (v, o)))
                    {
                        out.push(SwitchGrant {
                            in_port: i,
                            vc: v,
                            out_port: o,
                        });
                        vc.update(i, v);
                        // Only the output whose grant was consumed updates.
                        output.update(o, i);
                    }
                }
            }
        }
    }

    fn reset(&mut self) {
        match &mut self.inner {
            SepOfSwInner::Kernel { output, vc, .. } => {
                output.reset();
                vc.reset();
            }
            SepOfSwInner::Reference(r) => r.reset(),
        }
    }
}

/// Wavefront switch allocator (Figure 8(c)).
///
/// Input VCs' requests are combined per port as in the output-first case and
/// fed to a `P × P` wavefront block, which guarantees at most one output per
/// input — so its outputs can drive the crossbar directly. VC selection is
/// pre-computed in parallel by a stage of `V:1` arbiters (one per
/// (input, output) pair, matching the `P` per-input arbiters of Figure
/// 8(c)): if input `i` is granted output `o`, the pre-selected VC for that
/// pair wins.
pub struct WavefrontSwitchAllocator {
    ports: usize,
    vcs: usize,
    /// The `P × P` port matcher (itself kernel-backed for `P <= 64`).
    wavefront: WavefrontAllocator,
    inner: WfSwInner,
    /// Combined-request and grant scratch matrices, kept across calls so
    /// steady-state allocation stays at zero.
    port_reqs: BitMatrix,
    port_grants: BitMatrix,
}

enum WfSwInner {
    /// `presel[i * P + o]`: V:1 round-robin arbiter choosing the VC at
    /// input `i` that will use output `o` if granted — one contiguous bank.
    Kernel(ArbiterBank),
    /// Boxed arbiters for `V > 64`.
    Boxed(Vec<Box<dyn Arbiter + Send>>),
}

impl WavefrontSwitchAllocator {
    /// Builds the allocator (round-robin pre-selection, per the paper's
    /// `wf/rr` configuration).
    pub fn new(ports: usize, vcs: usize) -> Self {
        let inner = if vcs <= 64 {
            WfSwInner::Kernel(ArbiterBank::new(
                ArbiterKind::RoundRobin,
                ports * ports,
                vcs,
            ))
        } else {
            WfSwInner::Boxed(
                (0..ports * ports)
                    .map(|_| ArbiterKind::RoundRobin.build(vcs))
                    .collect(),
            )
        };
        WavefrontSwitchAllocator {
            ports,
            vcs,
            wavefront: WavefrontAllocator::new(ports, ports),
            inner,
            port_reqs: BitMatrix::new(ports, ports),
            port_grants: BitMatrix::new(ports, ports),
        }
    }
}

impl SwitchAllocator for WavefrontSwitchAllocator {
    fn ports(&self) -> usize {
        self.ports
    }

    fn vcs(&self) -> usize {
        self.vcs
    }

    fn allocate(&mut self, requests: &SwitchRequests) -> Vec<SwitchGrant> {
        let mut grants = Vec::new();
        self.allocate_into(requests, &mut grants);
        grants
    }

    fn allocate_into(&mut self, requests: &SwitchRequests, out: &mut Vec<SwitchGrant>) {
        assert_eq!(requests.ports(), self.ports);
        assert_eq!(requests.vcs(), self.vcs);
        out.clear();
        if requests.is_empty() {
            return;
        }
        requests.port_matrix_into(&mut self.port_reqs);
        self.wavefront
            .allocate_into(&self.port_reqs, &mut self.port_grants);
        let ports = self.ports;
        for (i, o) in self.port_grants.iter_set() {
            let v = match &mut self.inner {
                WfSwInner::Kernel(bank) => {
                    let v = bank.arbitrate(i * ports + o, requests.vcs_for_output_word(i, o));
                    if let Some(v) = v {
                        bank.update(i * ports + o, v);
                    }
                    v
                }
                WfSwInner::Boxed(presel) => {
                    let arb = &mut presel[i * ports + o];
                    let v = arb.arbitrate(&requests.vcs_for_output(i, o));
                    if let Some(v) = v {
                        arb.update(v);
                    }
                    v
                }
            };
            // The wavefront core only grants port pairs that requested.
            let Some(v) = v else {
                debug_assert!(false, "wavefront granted a port pair with no requesting VC");
                continue;
            };
            out.push(SwitchGrant {
                in_port: i,
                vc: v,
                out_port: o,
            });
        }
    }

    fn reset(&mut self) {
        self.wavefront.reset();
        match &mut self.inner {
            WfSwInner::Kernel(bank) => bank.reset(),
            WfSwInner::Boxed(presel) => {
                for a in presel {
                    a.reset();
                }
            }
        }
    }
}

/// Checks the structural guarantees of a switch-grant set; used by tests and
/// the simulator's debug assertions.
pub fn validate_switch_grants(
    requests: &SwitchRequests,
    grants: &[SwitchGrant],
) -> Result<(), String> {
    // Bits instead of Vec<bool>: this runs per cycle under debug
    // assertions and must not allocate in steady state.
    let mut in_used = Bits::new(requests.ports());
    let mut out_used = Bits::new(requests.ports());
    for g in grants {
        if requests.get(g.in_port, g.vc) != Some(g.out_port) {
            return Err(format!("grant without request: {g:?}"));
        }
        if in_used.get(g.in_port) {
            return Err(format!("two grants at input port {}", g.in_port));
        }
        in_used.set(g.in_port, true);
        if out_used.get(g.out_port) {
            return Err(format!("two grants at output port {}", g.out_port));
        }
        out_used.set(g.out_port, true);
    }
    Ok(())
}

/// Scalar predecessors of the switch-allocator kernels: boxed per-port
/// arbiters and element-wise stage sweeps, kept alive as differential
/// oracles and as the wide-configuration fallback.
pub mod reference {
    use super::{SwitchAllocator, SwitchGrant, SwitchRequests};
    use crate::wavefront;
    use crate::{Allocator, BitMatrix};
    use noc_arbiter::{Arbiter, ArbiterKind, Bits};

    /// Scalar separable input-first switch allocator.
    pub struct SepIfSwitchAllocator {
        ports: usize,
        vcs: usize,
        input_arbs: Vec<Box<dyn Arbiter + Send>>,
        output_arbs: Vec<Box<dyn Arbiter + Send>>,
        winners: Vec<Option<(usize, usize)>>,
    }

    impl SepIfSwitchAllocator {
        /// Scalar counterpart of [`super::SepIfSwitchAllocator::new`].
        pub fn new(ports: usize, vcs: usize, kind: ArbiterKind) -> Self {
            SepIfSwitchAllocator {
                ports,
                vcs,
                input_arbs: (0..ports).map(|_| kind.build(vcs)).collect(),
                output_arbs: (0..ports).map(|_| kind.build(ports)).collect(),
                winners: Vec::with_capacity(ports),
            }
        }
    }

    impl SwitchAllocator for SepIfSwitchAllocator {
        fn ports(&self) -> usize {
            self.ports
        }

        fn vcs(&self) -> usize {
            self.vcs
        }

        fn allocate(&mut self, requests: &SwitchRequests) -> Vec<SwitchGrant> {
            let mut grants = Vec::new();
            self.allocate_into(requests, &mut grants);
            grants
        }

        fn allocate_into(&mut self, requests: &SwitchRequests, out: &mut Vec<SwitchGrant>) {
            assert_eq!(requests.ports(), self.ports);
            assert_eq!(requests.vcs(), self.vcs);
            out.clear();
            if requests.is_empty() {
                return;
            }
            // Stage 1: winning VC per input port.
            self.winners.clear();
            for i in 0..self.ports {
                let w = self.input_arbs[i]
                    .arbitrate(&requests.active_vcs(i))
                    .and_then(|v| requests.get(i, v).map(|out| (v, out)));
                self.winners.push(w);
            }
            let winners = &self.winners;
            // Stage 2: arbitration among forwarded requests at each output.
            for o in 0..self.ports {
                let mut incoming = Bits::new(self.ports);
                for (i, w) in winners.iter().enumerate() {
                    if matches!(w, Some((_, out)) if *out == o) {
                        incoming.set(i, true);
                    }
                }
                if let Some(i) = self.output_arbs[o].arbitrate(&incoming) {
                    // `incoming` only carries inputs with a stage-1 winner.
                    let Some((v, _)) = winners[i] else { continue };
                    out.push(SwitchGrant {
                        in_port: i,
                        vc: v,
                        out_port: o,
                    });
                    // Both stages succeeded: commit priority updates.
                    self.input_arbs[i].update(v);
                    self.output_arbs[o].update(i);
                }
            }
        }

        fn reset(&mut self) {
            for a in self.input_arbs.iter_mut().chain(&mut self.output_arbs) {
                a.reset();
            }
        }
    }

    /// Scalar separable output-first switch allocator.
    pub struct SepOfSwitchAllocator {
        ports: usize,
        vcs: usize,
        output_arbs: Vec<Box<dyn Arbiter + Send>>,
        vc_arbs: Vec<Box<dyn Arbiter + Send>>,
        port_reqs: BitMatrix,
        stage1: Vec<Option<usize>>,
    }

    impl SepOfSwitchAllocator {
        /// Scalar counterpart of [`super::SepOfSwitchAllocator::new`].
        pub fn new(ports: usize, vcs: usize, kind: ArbiterKind) -> Self {
            SepOfSwitchAllocator {
                ports,
                vcs,
                output_arbs: (0..ports).map(|_| kind.build(ports)).collect(),
                vc_arbs: (0..ports).map(|_| kind.build(vcs)).collect(),
                port_reqs: BitMatrix::new(ports, ports),
                stage1: Vec::with_capacity(ports),
            }
        }
    }

    impl SwitchAllocator for SepOfSwitchAllocator {
        fn ports(&self) -> usize {
            self.ports
        }

        fn vcs(&self) -> usize {
            self.vcs
        }

        fn allocate(&mut self, requests: &SwitchRequests) -> Vec<SwitchGrant> {
            let mut grants = Vec::new();
            self.allocate_into(requests, &mut grants);
            grants
        }

        fn allocate_into(&mut self, requests: &SwitchRequests, out: &mut Vec<SwitchGrant>) {
            assert_eq!(requests.ports(), self.ports);
            assert_eq!(requests.vcs(), self.vcs);
            out.clear();
            if requests.is_empty() {
                return;
            }
            requests.port_matrix_into(&mut self.port_reqs);
            // Stage 1: each output arbitrates among all requesting inputs.
            self.stage1.clear();
            for o in 0..self.ports {
                let w = self.output_arbs[o].arbitrate(&self.port_reqs.col(o));
                self.stage1.push(w);
            }
            let stage1 = &self.stage1;
            // Stage 2: each input picks a winning VC among those whose
            // requested output was granted to it.
            for i in 0..self.ports {
                let mut candidates = Bits::new(self.vcs);
                for v in 0..self.vcs {
                    if let Some(o) = requests.get(i, v) {
                        if stage1[o] == Some(i) {
                            candidates.set(v, true);
                        }
                    }
                }
                if let Some(v) = self.vc_arbs[i].arbitrate(&candidates) {
                    // `candidates` only carries VCs with a live request.
                    let Some(o) = requests.get(i, v) else {
                        continue;
                    };
                    out.push(SwitchGrant {
                        in_port: i,
                        vc: v,
                        out_port: o,
                    });
                    self.vc_arbs[i].update(v);
                    // Only the output whose grant was consumed updates.
                    self.output_arbs[o].update(i);
                }
            }
        }

        fn reset(&mut self) {
            for a in self.output_arbs.iter_mut().chain(&mut self.vc_arbs) {
                a.reset();
            }
        }
    }

    /// Scalar wavefront switch allocator (scalar wavefront core + boxed
    /// pre-selection arbiters).
    pub struct WavefrontSwitchAllocator {
        ports: usize,
        vcs: usize,
        wavefront: wavefront::reference::WavefrontAllocator,
        presel: Vec<Box<dyn Arbiter + Send>>,
        port_reqs: BitMatrix,
        port_grants: BitMatrix,
    }

    impl WavefrontSwitchAllocator {
        /// Scalar counterpart of [`super::WavefrontSwitchAllocator::new`].
        pub fn new(ports: usize, vcs: usize) -> Self {
            WavefrontSwitchAllocator {
                ports,
                vcs,
                wavefront: wavefront::reference::WavefrontAllocator::new(ports, ports),
                presel: (0..ports * ports)
                    .map(|_| ArbiterKind::RoundRobin.build(vcs))
                    .collect(),
                port_reqs: BitMatrix::new(ports, ports),
                port_grants: BitMatrix::new(ports, ports),
            }
        }
    }

    impl SwitchAllocator for WavefrontSwitchAllocator {
        fn ports(&self) -> usize {
            self.ports
        }

        fn vcs(&self) -> usize {
            self.vcs
        }

        fn allocate(&mut self, requests: &SwitchRequests) -> Vec<SwitchGrant> {
            let mut grants = Vec::new();
            self.allocate_into(requests, &mut grants);
            grants
        }

        fn allocate_into(&mut self, requests: &SwitchRequests, out: &mut Vec<SwitchGrant>) {
            assert_eq!(requests.ports(), self.ports);
            assert_eq!(requests.vcs(), self.vcs);
            out.clear();
            if requests.is_empty() {
                return;
            }
            requests.port_matrix_into(&mut self.port_reqs);
            self.wavefront
                .allocate_into(&self.port_reqs, &mut self.port_grants);
            let ports = self.ports;
            let (port_grants, presel) = (&self.port_grants, &mut self.presel);
            for (i, o) in port_grants.iter_set() {
                let arb = &mut presel[i * ports + o];
                // The wavefront core only grants port pairs that requested.
                let Some(v) = arb.arbitrate(&requests.vcs_for_output(i, o)) else {
                    debug_assert!(false, "wavefront granted a port pair with no requesting VC");
                    continue;
                };
                arb.update(v);
                out.push(SwitchGrant {
                    in_port: i,
                    vc: v,
                    out_port: o,
                });
            }
        }

        fn reset(&mut self) {
            self.wavefront.reset();
            for a in &mut self.presel {
                a.reset();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn kinds() -> Vec<SwitchAllocatorKind> {
        vec![
            SwitchAllocatorKind::SepIf(ArbiterKind::RoundRobin),
            SwitchAllocatorKind::SepIf(ArbiterKind::Matrix),
            SwitchAllocatorKind::SepOf(ArbiterKind::RoundRobin),
            SwitchAllocatorKind::SepOf(ArbiterKind::Matrix),
            SwitchAllocatorKind::Wavefront,
        ]
    }

    fn random_requests(rng: &mut impl Rng, p: usize, v: usize, rate: f64) -> SwitchRequests {
        let mut r = SwitchRequests::new(p, v);
        for i in 0..p {
            for vc in 0..v {
                if rng.gen_bool(rate) {
                    r.request(i, vc, rng.gen_range(0..p));
                }
            }
        }
        r
    }

    #[test]
    fn grants_satisfy_structural_constraints() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        for kind in kinds() {
            let mut a = kind.build(5, 4);
            for _ in 0..100 {
                let reqs = random_requests(&mut rng, 5, 4, 0.4);
                let grants = a.allocate(&reqs);
                validate_switch_grants(&reqs, &grants).unwrap_or_else(|e| panic!("{kind:?}: {e}"));
            }
        }
    }

    #[test]
    fn non_conflicting_port_requests_all_granted() {
        for kind in kinds() {
            let mut a = kind.build(4, 2);
            let mut reqs = SwitchRequests::new(4, 2);
            reqs.request(0, 0, 2);
            reqs.request(1, 1, 0);
            reqs.request(3, 0, 3);
            let grants = a.allocate(&reqs);
            assert_eq!(grants.len(), 3, "{kind:?}");
        }
    }

    #[test]
    fn single_grant_per_input_even_with_many_vcs() {
        for kind in kinds() {
            let mut a = kind.build(3, 4);
            let mut reqs = SwitchRequests::new(3, 4);
            // All four VCs at input 0 request distinct outputs.
            for vc in 0..3 {
                reqs.request(0, vc, vc);
            }
            let grants = a.allocate(&reqs);
            assert_eq!(grants.len(), 1, "{kind:?}: input port over-granted");
            assert_eq!(grants[0].in_port, 0);
        }
    }

    #[test]
    fn wavefront_switch_is_maximal_on_port_graph() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let mut a = WavefrontSwitchAllocator::new(6, 3);
        for _ in 0..100 {
            let reqs = random_requests(&mut rng, 6, 3, 0.5);
            let grants = a.allocate(&reqs);
            let mut gm = BitMatrix::new(6, 6);
            for g in &grants {
                gm.set(g.in_port, g.out_port, true);
            }
            assert!(gm.is_maximal_for(&reqs.port_matrix()));
        }
    }

    #[test]
    fn sep_if_bottlenecked_by_single_stage1_winner() {
        // §5.3.2: sep_if "can only propagate a single request per input port
        // to its second arbitration stage". Two inputs each have VCs for
        // both outputs; sep_if with aligned priorities grants only one pair,
        // wavefront grants two.
        let mut sep = SepIfSwitchAllocator::new(2, 2, ArbiterKind::RoundRobin);
        let mut wf = WavefrontSwitchAllocator::new(2, 2);
        let mut reqs = SwitchRequests::new(2, 2);
        // Both inputs: VC0 -> out 0, VC1 -> out 1.
        for i in 0..2 {
            reqs.request(i, 0, 0);
            reqs.request(i, 1, 1);
        }
        // sep_if stage 1 picks VC0 at both inputs -> both forward to output
        // 0 -> single grant.
        let g = sep.allocate(&reqs);
        assert_eq!(g.len(), 1);
        let g = wf.allocate(&reqs);
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn persistent_conflict_is_fair() {
        for kind in kinds() {
            let mut a = kind.build(2, 1);
            let mut reqs = SwitchRequests::new(2, 1);
            reqs.request(0, 0, 0);
            reqs.request(1, 0, 0);
            let mut counts = [0usize; 2];
            for _ in 0..20 {
                for g in a.allocate(&reqs) {
                    counts[g.in_port] += 1;
                }
            }
            assert!(
                counts[0] >= 8 && counts[1] >= 8,
                "{kind:?} unfair: {counts:?}"
            );
        }
    }

    #[test]
    fn empty_requests_produce_no_grants() {
        for kind in kinds() {
            let mut a = kind.build(5, 4);
            assert!(
                a.allocate(&SwitchRequests::new(5, 4)).is_empty(),
                "{kind:?}"
            );
        }
    }

    #[test]
    fn port_matrix_and_helpers() {
        let mut r = SwitchRequests::new(3, 2);
        r.request(0, 0, 1);
        r.request(0, 1, 2);
        r.request(2, 1, 1);
        let m = r.port_matrix();
        assert!(m.get(0, 1) && m.get(0, 2) && m.get(2, 1));
        assert_eq!(m.count_ones(), 3);
        assert!(r.input_active(0) && !r.input_active(1) && r.input_active(2));
        assert!(r.output_requested(1) && !r.output_requested(0));
        assert_eq!(
            r.vcs_for_output(0, 2).iter_set().collect::<Vec<_>>(),
            vec![1]
        );
        assert_eq!(r.active_vcs_word(0), 0b11);
        assert_eq!(r.vcs_for_output_word(0, 2), 0b10);
        assert_eq!(r.vcs_for_output_word(1, 1), 0);
    }
}
