//! Step-bounded augmenting-path allocation (§2.3).
//!
//! The paper notes that maximum-size matchings are "readily found by
//! performing successive iterations of an augmenting path algorithm", and
//! that hardware schedulers performing *one augmentation step per cycle*
//! have been proposed (Hoare et al., SC '06) but are too slow/complex for
//! single-cycle NoC allocation. This module models that design point: an
//! allocator that runs a bounded number of augmentation searches per
//! invocation, interpolating between a cheap greedy matching (0 extra
//! steps) and the full maximum-size result.

use crate::{Allocator, BitMatrix};

/// Allocator that builds a greedy matching and then improves it with at
/// most `augmentations` augmenting-path searches.
///
/// * `augmentations = 0` — pure greedy (first-fit) matching, a lower bound
///   comparable to one separable pass.
/// * `augmentations >= requesters` — exact maximum-size matching.
///
/// Like [`crate::MaxSizeAllocator`], this provides no fairness guarantees;
/// it exists for the §2.3 quality/complexity ablation, not as a practical
/// router allocator.
pub struct AugmentingPathAllocator {
    requesters: usize,
    resources: usize,
    augmentations: usize,
}

impl AugmentingPathAllocator {
    /// Creates the allocator with a per-invocation augmentation budget.
    pub fn new(requesters: usize, resources: usize, augmentations: usize) -> Self {
        AugmentingPathAllocator {
            requesters,
            resources,
            augmentations,
        }
    }

    /// The configured augmentation budget.
    pub fn augmentations(&self) -> usize {
        self.augmentations
    }

    fn augment(
        requests: &BitMatrix,
        r: usize,
        col_match: &mut [Option<usize>],
        visited: &mut [bool],
    ) -> bool {
        for c in requests.row(r).iter_set() {
            if visited[c] {
                continue;
            }
            visited[c] = true;
            let freed = match col_match[c] {
                None => true,
                Some(owner) => Self::augment(requests, owner, col_match, visited),
            };
            if freed {
                col_match[c] = Some(r);
                return true;
            }
        }
        false
    }
}

impl Allocator for AugmentingPathAllocator {
    fn num_requesters(&self) -> usize {
        self.requesters
    }

    fn num_resources(&self) -> usize {
        self.resources
    }

    fn allocate(&mut self, requests: &BitMatrix) -> BitMatrix {
        assert_eq!(requests.num_rows(), self.requesters);
        assert_eq!(requests.num_cols(), self.resources);
        let mut col_match: Vec<Option<usize>> = vec![None; self.resources];
        let mut row_matched = vec![false; self.requesters];
        // Greedy first pass: each requester takes its first free resource.
        for r in 0..self.requesters {
            for c in requests.row(r).iter_set() {
                if col_match[c].is_none() {
                    col_match[c] = Some(r);
                    row_matched[r] = true;
                    break;
                }
            }
        }
        // Bounded augmentation passes over the unmatched requesters.
        let mut budget = self.augmentations;
        let mut visited = vec![false; self.resources];
        for r in 0..self.requesters {
            if budget == 0 {
                break;
            }
            if row_matched[r] || requests.row(r).is_zero() {
                continue;
            }
            budget -= 1;
            visited.iter_mut().for_each(|v| *v = false);
            if Self::augment(requests, r, &mut col_match, &mut visited) {
                row_matched[r] = true;
            }
        }
        let mut grants = BitMatrix::new(self.requesters, self.resources);
        for (c, m) in col_match.iter().enumerate() {
            if let Some(r) = m {
                grants.set(*r, c, true);
            }
        }
        grants
    }

    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MaxSizeAllocator;
    use rand::{Rng, SeedableRng};

    fn random_matrix(rng: &mut impl Rng, n: usize, density: f64) -> BitMatrix {
        let mut m = BitMatrix::new(n, n);
        for r in 0..n {
            for c in 0..n {
                if rng.gen_bool(density) {
                    m.set(r, c, true);
                }
            }
        }
        m
    }

    #[test]
    fn grants_are_matchings() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for steps in [0usize, 1, 3, 100] {
            let mut a = AugmentingPathAllocator::new(10, 10, steps);
            for _ in 0..100 {
                let req = random_matrix(&mut rng, 10, 0.3);
                let g = a.allocate(&req);
                assert!(g.is_matching_for(&req), "steps={steps}");
            }
        }
    }

    #[test]
    fn unbounded_budget_equals_maximum_size() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let mut a = AugmentingPathAllocator::new(12, 12, usize::MAX);
        for _ in 0..200 {
            let req = random_matrix(&mut rng, 12, 0.25);
            assert_eq!(
                a.allocate(&req).count_ones(),
                MaxSizeAllocator::max_matching_size(&req)
            );
        }
    }

    #[test]
    fn quality_is_monotone_in_budget() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut totals = vec![0usize; 4];
        let budgets = [0usize, 1, 2, 100];
        for _ in 0..300 {
            let req = random_matrix(&mut rng, 12, 0.25);
            for (i, &b) in budgets.iter().enumerate() {
                let mut a = AugmentingPathAllocator::new(12, 12, b);
                totals[i] += a.allocate(&req).count_ones();
            }
        }
        for w in totals.windows(2) {
            assert!(w[0] <= w[1], "quality not monotone: {totals:?}");
        }
        assert!(totals[0] < totals[3], "augmentation never helped");
    }

    #[test]
    fn greedy_matching_is_maximal() {
        // Even with zero augmentation budget, the greedy pass yields a
        // maximal matching (first-fit never leaves a grantable pair).
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let mut a = AugmentingPathAllocator::new(9, 9, 0);
        for _ in 0..200 {
            let req = random_matrix(&mut rng, 9, 0.3);
            let g = a.allocate(&req);
            assert!(g.is_maximal_for(&req));
        }
    }

    #[test]
    fn single_augmentation_fixes_one_lockout() {
        // Greedy matches (0,0), stranding requester 1; one augmentation
        // step re-routes requester 0 to column 1.
        let req = BitMatrix::from_entries(2, 2, [(0, 0), (0, 1), (1, 0)]);
        let mut greedy = AugmentingPathAllocator::new(2, 2, 0);
        assert_eq!(greedy.allocate(&req).count_ones(), 1);
        let mut one = AugmentingPathAllocator::new(2, 2, 1);
        assert_eq!(one.allocate(&req).count_ones(), 2);
    }
}
