//! Vector clocks: the happens-before bookkeeping under the race detector.
//!
//! Every virtual thread carries a [`VectorClock`]; every modeled atomic
//! variable carries one as its *synchronization clock* (the clock published
//! by the last release operation, extended through read-modify-writes per
//! the C++20 release-sequence rules). A non-atomic access A happens-before
//! an access B iff A's recording thread clock at the time of A is
//! componentwise `<=` B's thread clock at the time of B — exactly the
//! FastTrack/Miri formulation, evaluated here over sequentially consistent
//! interleavings.

/// A fixed-width vector clock, one lamport component per virtual thread.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct VectorClock {
    ticks: Vec<u64>,
}

impl VectorClock {
    /// The zero clock over `threads` components.
    pub fn new(threads: usize) -> Self {
        VectorClock {
            ticks: vec![0; threads],
        }
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.ticks.len()
    }

    /// True when the clock has no components.
    pub fn is_empty(&self) -> bool {
        self.ticks.is_empty()
    }

    /// This thread performed one more step.
    pub fn tick(&mut self, thread: usize) {
        self.ticks[thread] += 1;
    }

    /// The component for `thread`.
    pub fn get(&self, thread: usize) -> u64 {
        self.ticks[thread]
    }

    /// Componentwise maximum: `self = self ⊔ other`.
    pub fn join(&mut self, other: &VectorClock) {
        for (t, o) in self.ticks.iter_mut().zip(&other.ticks) {
            *t = (*t).max(*o);
        }
    }

    /// True when every component of `self` is `<=` the matching component
    /// of `other` — i.e. the event stamped `self` happens-before (or is)
    /// the event stamped `other`.
    pub fn le(&self, other: &VectorClock) -> bool {
        self.ticks.iter().zip(&other.ticks).all(|(a, b)| a <= b)
    }

    /// Clears every component (a `Relaxed` store severs the release
    /// sequence, so the variable's sync clock resets to zero).
    pub fn clear(&mut self) {
        self.ticks.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_and_le() {
        let mut a = VectorClock::new(3);
        let mut b = VectorClock::new(3);
        a.tick(0);
        a.tick(0);
        b.tick(1);
        assert!(!a.le(&b));
        assert!(!b.le(&a));
        let mut j = a.clone();
        j.join(&b);
        assert!(a.le(&j));
        assert!(b.le(&j));
        assert_eq!(j.get(0), 2);
        assert_eq!(j.get(1), 1);
        b.join(&a);
        assert!(a.le(&b));
    }

    #[test]
    fn clear_resets() {
        let mut a = VectorClock::new(2);
        a.tick(1);
        a.clear();
        assert!(a.le(&VectorClock::new(2)));
    }
}
