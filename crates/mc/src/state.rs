//! Model state and the big-step transition interpreter.
//!
//! A [`ModelState`] holds every modeled atomic (value + synchronization
//! clock), every tracked cell (FastTrack-style last-write clock plus
//! per-thread read clocks), and every virtual thread (program counter,
//! registers, vector clock). [`ModelState::transition`] executes one
//! scheduling-point operation of the chosen thread and then runs its
//! following non-synchronizing operations eagerly, recording everything
//! into the schedule trace and checking each cell access for races.

use crate::clock::VectorClock;
use crate::program::{AccessKind, Op, Ordering, Program};
use std::fmt;
use std::rc::Rc;

/// A modeled atomic variable: its value and the clock published by the
/// last release operation (kept through read-modify-writes, severed by a
/// relaxed store — the C++20 release-sequence rule).
#[derive(Clone, Debug)]
struct AtomicVar {
    value: u64,
    sync: VectorClock,
}

/// Race-detector metadata for one tracked cell.
#[derive(Clone, Debug)]
struct CellVar {
    /// Clock of the last write, and the thread that performed it.
    last_write: Option<(usize, VectorClock)>,
    /// Per-thread clock of that thread's last read since the last write.
    reads: Vec<Option<VectorClock>>,
}

/// One virtual thread's mutable half (its [`Program`] is shared).
#[derive(Clone, Debug)]
struct ThreadState {
    pc: usize,
    regs: Vec<u64>,
    clock: VectorClock,
    finished: bool,
}

/// One executed scheduling-point transition, for counterexample printing.
#[derive(Clone, Debug)]
pub struct TraceEntry {
    pub thread: usize,
    pub desc: String,
}

/// A pinpointed racy access in a counterexample.
#[derive(Clone, Debug)]
pub struct Access {
    pub thread: usize,
    pub kind: AccessKind,
}

/// Why an execution was rejected.
#[derive(Clone, Debug)]
pub enum Violation {
    /// Two accesses to the same cell unordered by happens-before.
    DataRace {
        cell: usize,
        first: Access,
        second: Access,
    },
    /// Unfinished threads with no runnable transition.
    Deadlock { blocked: Vec<usize> },
    /// An [`Op::Assert`] failed.
    AssertFailed { thread: usize, msg: &'static str },
}

/// The immutable model definition: names for rendering, initial values,
/// and one program per virtual thread.
#[derive(Clone, Debug)]
pub struct Model {
    pub name: String,
    pub atomic_names: Vec<String>,
    pub atomic_init: Vec<u64>,
    pub cell_names: Vec<String>,
    pub programs: Vec<Rc<Program>>,
}

impl Model {
    /// Render a thread id as its program name.
    pub fn thread_name(&self, t: usize) -> &str {
        &self.programs[t].name
    }

    /// Renders a violation with model-level names.
    pub fn render_violation(&self, v: &Violation) -> String {
        match v {
            Violation::DataRace {
                cell,
                first,
                second,
            } => format!(
                "data race on `{}`: {} by `{}` is unordered with {} by `{}`",
                self.cell_names[*cell],
                first.kind,
                self.thread_name(first.thread),
                second.kind,
                self.thread_name(second.thread),
            ),
            Violation::Deadlock { blocked } => {
                let names: Vec<&str> = blocked.iter().map(|&t| self.thread_name(t)).collect();
                format!("deadlock: {names:?} blocked with no runnable thread")
            }
            Violation::AssertFailed { thread, msg } => {
                format!("assertion failed in `{}`: {msg}", self.thread_name(*thread))
            }
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::DataRace {
                cell,
                first,
                second,
            } => write!(
                f,
                "data race on cell {cell}: {} by thread {} is unordered with {} by thread {}",
                first.kind, first.thread, second.kind, second.thread
            ),
            Violation::Deadlock { blocked } => {
                write!(f, "deadlock: threads {blocked:?} blocked, none runnable")
            }
            Violation::AssertFailed { thread, msg } => {
                write!(f, "assertion failed in thread {thread}: {msg}")
            }
        }
    }
}

/// A full exploration state: cloned at every DFS branch point.
#[derive(Clone)]
pub struct ModelState {
    atomics: Vec<AtomicVar>,
    cells: Vec<CellVar>,
    threads: Vec<ThreadState>,
    /// Scheduling-point schedule taken so far (the counterexample).
    pub trace: Vec<TraceEntry>,
}

impl ModelState {
    /// The reset state of `model`, with every thread advanced up to (but
    /// not through) its first scheduling point.
    pub fn new(model: &Model) -> Result<Self, Violation> {
        let nthreads = model.programs.len();
        let mut st = ModelState {
            atomics: model
                .atomic_init
                .iter()
                .map(|&value| AtomicVar {
                    value,
                    sync: VectorClock::new(nthreads),
                })
                .collect(),
            cells: model
                .cell_names
                .iter()
                .map(|_| CellVar {
                    last_write: None,
                    reads: vec![None; nthreads],
                })
                .collect(),
            threads: model
                .programs
                .iter()
                .enumerate()
                .map(|(t, p)| {
                    // Every thread's clock starts with its own component
                    // at 1: an access stamped before any synchronization
                    // must still be *unordered* with other threads, not
                    // vacuously ordered by an all-zero clock.
                    let mut clock = VectorClock::new(nthreads);
                    clock.tick(t);
                    ThreadState {
                        pc: 0,
                        regs: vec![0; p.regs],
                        clock,
                        finished: false,
                    }
                })
                .collect(),
            trace: Vec::new(),
        };
        for t in 0..nthreads {
            st.run_local(model, t)?;
        }
        Ok(st)
    }

    /// True when every thread ran to completion.
    pub fn all_finished(&self) -> bool {
        self.threads.iter().all(|t| t.finished)
    }

    /// Thread ids that are unfinished (necessarily parked on an await
    /// whose predicates are false, since local ops run eagerly).
    pub fn unfinished(&self) -> Vec<usize> {
        (0..self.threads.len())
            .filter(|&t| !self.threads[t].finished)
            .collect()
    }

    /// True when thread `t` can take a transition now: unfinished and, if
    /// parked on an await, at least one awaited predicate holds.
    pub fn runnable(&self, model: &Model, t: usize) -> bool {
        let th = &self.threads[t];
        if th.finished {
            return false;
        }
        match &model.programs[t].ops[th.pc] {
            Op::Await { var, pred, .. } => pred.eval(self.atomics[*var].value, &th.regs),
            Op::AwaitEither {
                var,
                pred,
                alt_var,
                alt_pred,
                ..
            } => {
                pred.eval(self.atomics[*var].value, &th.regs)
                    || alt_pred.eval(self.atomics[*alt_var].value, &th.regs)
            }
            _ => true,
        }
    }

    /// All currently runnable thread ids.
    pub fn runnable_threads(&self, model: &Model) -> Vec<usize> {
        (0..self.threads.len())
            .filter(|&t| self.runnable(model, t))
            .collect()
    }

    /// Executes thread `t`'s pending scheduling-point operation, then runs
    /// its following local operations eagerly until the next scheduling
    /// point or the end of the program. `t` must be runnable.
    pub fn transition(&mut self, model: &Model, t: usize) -> Result<(), Violation> {
        let program = Rc::clone(&model.programs[t]);
        let op = program.ops[self.threads[t].pc].clone();
        self.threads[t].clock.tick(t);
        let desc = self.exec_sync(model, t, &op)?;
        self.trace.push(TraceEntry { thread: t, desc });
        self.run_local(model, t)
    }

    /// Executes one synchronization operation, returning its rendering.
    fn exec_sync(&mut self, model: &Model, t: usize, op: &Op) -> Result<String, Violation> {
        match *op {
            Op::Load { var, ord, reg } => {
                let value = self.atomic_load(t, var, ord);
                self.threads[t].regs[reg] = value;
                self.threads[t].pc += 1;
                Ok(format!(
                    "load {}({ord}) -> {value}",
                    model.atomic_names[var]
                ))
            }
            Op::Store { var, ord, value } => {
                let v = value.eval(&self.threads[t].regs);
                self.atomic_store(t, var, ord, v);
                self.threads[t].pc += 1;
                Ok(format!("store {}({ord}) = {v}", model.atomic_names[var]))
            }
            Op::FetchAdd {
                var,
                ord,
                operand,
                reg,
            } => {
                let d = operand.eval(&self.threads[t].regs);
                let old = self.atomic_rmw_add(t, var, ord, d);
                self.threads[t].regs[reg] = old;
                self.threads[t].pc += 1;
                Ok(format!(
                    "fetch_add {}({ord}) += {d} (was {old})",
                    model.atomic_names[var]
                ))
            }
            Op::Await {
                var,
                ord,
                pred,
                reg,
            } => {
                let value = self.atomic_load(t, var, ord);
                debug_assert!(
                    pred.eval(value, &self.threads[t].regs),
                    "await scheduled while blocked"
                );
                self.threads[t].regs[reg] = value;
                self.threads[t].pc += 1;
                Ok(format!(
                    "await {} {pred} ({ord}) -> {value}",
                    model.atomic_names[var]
                ))
            }
            Op::AwaitEither {
                var,
                ord,
                pred,
                reg,
                alt_var,
                alt_ord,
                alt_pred,
                alt_target,
            } => {
                // Matches the real loop's program order: check the primary
                // condition first, only then the alternate.
                let thread_regs_ok = {
                    let value = self.atomics[var].value;
                    pred.eval(value, &self.threads[t].regs)
                };
                if thread_regs_ok {
                    let value = self.atomic_load(t, var, ord);
                    self.threads[t].regs[reg] = value;
                    self.threads[t].pc += 1;
                    Ok(format!(
                        "await {} {pred} ({ord}) -> {value}",
                        model.atomic_names[var]
                    ))
                } else {
                    let value = self.atomic_load(t, alt_var, alt_ord);
                    debug_assert!(alt_pred.eval(value, &self.threads[t].regs));
                    self.threads[t].pc = alt_target;
                    Ok(format!(
                        "await-alt {} {alt_pred} ({alt_ord}) -> {value}",
                        model.atomic_names[alt_var]
                    ))
                }
            }
            _ => unreachable!("exec_sync on local op"),
        }
    }

    /// Runs local (non-scheduling-point) operations of thread `t` until it
    /// blocks at a sync op, finishes, or hits a violation.
    fn run_local(&mut self, model: &Model, t: usize) -> Result<(), Violation> {
        let program = Rc::clone(&model.programs[t]);
        loop {
            let Some(op) = program.ops.get(self.threads[t].pc) else {
                self.threads[t].finished = true;
                return Ok(());
            };
            if op.is_sync() {
                return Ok(());
            }
            match *op {
                Op::Cell { cell, kind } => {
                    let c = cell.eval(&self.threads[t].regs) as usize;
                    self.cell_access(t, c, kind)?;
                    self.threads[t].pc += 1;
                }
                Op::Set { reg, value } => {
                    self.threads[t].regs[reg] = value.eval(&self.threads[t].regs);
                    self.threads[t].pc += 1;
                }
                Op::Branch { cond, target } => {
                    if cond.eval(&self.threads[t].regs) {
                        self.threads[t].pc = target;
                    } else {
                        self.threads[t].pc += 1;
                    }
                }
                Op::Jump { target } => self.threads[t].pc = target,
                Op::Assert { cond, msg } => {
                    if !cond.eval(&self.threads[t].regs) {
                        return Err(Violation::AssertFailed { thread: t, msg });
                    }
                    self.threads[t].pc += 1;
                }
                _ => unreachable!("sync op handled above"),
            }
        }
    }

    fn atomic_load(&mut self, t: usize, var: usize, ord: Ordering) -> u64 {
        let a = &self.atomics[var];
        let value = a.value;
        if ord.acquires() {
            let sync = a.sync.clone();
            self.threads[t].clock.join(&sync);
        }
        value
    }

    fn atomic_store(&mut self, t: usize, var: usize, ord: Ordering, value: u64) {
        let clock = self.threads[t].clock.clone();
        let a = &mut self.atomics[var];
        a.value = value;
        if ord.releases() {
            a.sync = clock;
        } else {
            // A relaxed store severs the release sequence.
            a.sync.clear();
        }
    }

    fn atomic_rmw_add(&mut self, t: usize, var: usize, ord: Ordering, delta: u64) -> u64 {
        if ord.acquires() {
            let sync = self.atomics[var].sync.clone();
            self.threads[t].clock.join(&sync);
        }
        let clock = self.threads[t].clock.clone();
        let a = &mut self.atomics[var];
        let old = a.value;
        a.value = old + delta;
        if ord.releases() {
            // An RMW extends the release sequence: join, don't overwrite.
            a.sync.join(&clock);
        }
        // A relaxed RMW leaves the variable's sync clock intact (C++20:
        // read-modify-writes continue a release sequence regardless of
        // their own ordering).
        old
    }

    /// Records a tracked cell access and checks it for races against the
    /// detector metadata.
    fn cell_access(&mut self, t: usize, cell: usize, kind: AccessKind) -> Result<(), Violation> {
        let clock = self.threads[t].clock.clone();
        let c = &mut self.cells[cell];
        // Any access must happen-after the last write.
        if let Some((wt, wc)) = &c.last_write {
            if *wt != t && !wc.le(&clock) {
                return Err(Violation::DataRace {
                    cell,
                    first: Access {
                        thread: *wt,
                        kind: AccessKind::Write,
                    },
                    second: Access { thread: t, kind },
                });
            }
        }
        match kind {
            AccessKind::Read => {
                c.reads[t] = Some(clock);
            }
            AccessKind::Write => {
                // A write must additionally happen-after every read.
                for (rt, rc) in c.reads.iter().enumerate() {
                    if rt == t {
                        continue;
                    }
                    if let Some(rc) = rc {
                        if !rc.le(&clock) {
                            return Err(Violation::DataRace {
                                cell,
                                first: Access {
                                    thread: rt,
                                    kind: AccessKind::Read,
                                },
                                second: Access { thread: t, kind },
                            });
                        }
                    }
                }
                c.reads.iter_mut().for_each(|r| *r = None);
                c.last_write = Some((t, clock));
            }
        }
        Ok(())
    }
}
