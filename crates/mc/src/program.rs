//! The virtual-thread DSL: straight-line programs over registers, modeled
//! atomics, and tracked non-atomic cells.
//!
//! Programs are data (no closures), so model states clone cheaply during
//! DFS and every executed operation renders into the counterexample
//! schedule. Atomic operations ([`Op::Load`], [`Op::Store`],
//! [`Op::FetchAdd`], [`Op::Await`], [`Op::AwaitEither`]) are *scheduling
//! points*: the explorer branches over which runnable thread performs its
//! next one. Everything else (register arithmetic, branches, cell
//! accesses) runs eagerly after the scheduling point, which is sound
//! because happens-before — and therefore the race verdict — depends only
//! on the synchronization structure, not on where data accesses fall
//! between synchronization operations.

use std::fmt;

/// Memory orderings the model distinguishes. `SeqCst` is deliberately
/// absent: the audited protocol never uses it, and modeling it would only
/// mask missing Acquire/Release edges.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Ordering {
    Relaxed,
    Acquire,
    Release,
    AcqRel,
}

impl Ordering {
    /// True when a load with this ordering acquires the variable's
    /// synchronization clock.
    pub fn acquires(self) -> bool {
        matches!(self, Ordering::Acquire | Ordering::AcqRel)
    }

    /// True when a store/RMW with this ordering releases the thread's
    /// clock into the variable.
    pub fn releases(self) -> bool {
        self == Ordering::Release || self == Ordering::AcqRel
    }
}

impl fmt::Display for Ordering {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Ordering::Relaxed => "Relaxed",
            Ordering::Acquire => "Acquire",
            Ordering::Release => "Release",
            Ordering::AcqRel => "AcqRel",
        };
        f.write_str(s)
    }
}

/// A value read from the register file.
#[derive(Clone, Copy, Debug)]
pub enum Expr {
    /// A literal.
    Const(u64),
    /// The current value of a register.
    Reg(usize),
    /// `regs[reg] + delta` — loop counters and offset cell indices.
    RegPlus(usize, u64),
}

impl Expr {
    /// Evaluates against a register file.
    pub fn eval(&self, regs: &[u64]) -> u64 {
        match *self {
            Expr::Const(c) => c,
            Expr::Reg(r) => regs[r],
            Expr::RegPlus(r, d) => regs[r] + d,
        }
    }
}

/// A predicate over a freshly loaded atomic value (used by the blocking
/// await operations).
#[derive(Clone, Copy, Debug)]
pub enum Pred {
    /// `value > regs[reg]`
    GtReg(usize),
    /// `value >= k`
    GeConst(u64),
    /// `value != k`
    NeConst(u64),
}

impl Pred {
    /// Evaluates the predicate for `value` under `regs`.
    pub fn eval(&self, value: u64, regs: &[u64]) -> bool {
        match *self {
            Pred::GtReg(r) => value > regs[r],
            Pred::GeConst(k) => value >= k,
            Pred::NeConst(k) => value != k,
        }
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Pred::GtReg(r) => write!(f, "> r{r}"),
            Pred::GeConst(k) => write!(f, ">= {k}"),
            Pred::NeConst(k) => write!(f, "!= {k}"),
        }
    }
}

/// A branch condition over the register file.
#[derive(Clone, Copy, Debug)]
pub enum Cond {
    /// `regs[reg] >= k`
    RegGeConst(usize, u64),
    /// `regs[a] >= regs[b]`
    RegGeReg(usize, usize),
}

impl Cond {
    /// Evaluates against a register file.
    pub fn eval(&self, regs: &[u64]) -> bool {
        match *self {
            Cond::RegGeConst(r, k) => regs[r] >= k,
            Cond::RegGeReg(a, b) => regs[a] >= regs[b],
        }
    }
}

/// Whether a tracked cell access reads or writes the cell. An exclusive
/// (`&mut`) access through an `UnsafeCell` models as a write.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessKind {
    Read,
    Write,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AccessKind::Read => "read",
            AccessKind::Write => "write",
        })
    }
}

/// One virtual-thread instruction.
#[derive(Clone, Debug)]
pub enum Op {
    /// Atomic load into a register. Scheduling point.
    Load {
        var: usize,
        ord: Ordering,
        reg: usize,
    },
    /// Atomic store. Scheduling point.
    Store {
        var: usize,
        ord: Ordering,
        value: Expr,
    },
    /// Atomic fetch-add; the *previous* value lands in `reg`. Scheduling
    /// point.
    FetchAdd {
        var: usize,
        ord: Ordering,
        operand: Expr,
        reg: usize,
    },
    /// Blocking spin-wait: runnable only while `pred` holds for the
    /// current value of `var`; when scheduled it performs one load with
    /// `ord` into `reg`. Models a spin loop with an empty body — sound
    /// because failed spin reads have no side effects, and dropping their
    /// acquire edges only *removes* happens-before, which can never hide a
    /// race. Scheduling point.
    Await {
        var: usize,
        ord: Ordering,
        pred: Pred,
        reg: usize,
    },
    /// Two-condition spin-wait (the worker's `epoch`-or-`stop` loop):
    /// runnable when either predicate holds for its variable. When
    /// scheduled it checks `var` first (matching the real loop's program
    /// order); on success it behaves like [`Op::Await`] and falls
    /// through, otherwise it loads `alt_var` with `alt_ord` and jumps to
    /// `alt_target`. Scheduling point.
    AwaitEither {
        var: usize,
        ord: Ordering,
        pred: Pred,
        reg: usize,
        alt_var: usize,
        alt_ord: Ordering,
        alt_pred: Pred,
        alt_target: usize,
    },
    /// Tracked non-atomic access to cell `cell` (an `UnsafeCell` shard in
    /// the real code). Not a scheduling point; checked against the race
    /// detector.
    Cell { cell: Expr, kind: AccessKind },
    /// `regs[reg] = value`.
    Set { reg: usize, value: Expr },
    /// Conditional forward/backward jump.
    Branch { cond: Cond, target: usize },
    /// Unconditional jump.
    Jump { target: usize },
    /// Model invariant; a false condition is a reported violation.
    Assert { cond: Cond, msg: &'static str },
}

impl Op {
    /// True for operations the explorer branches on.
    pub fn is_sync(&self) -> bool {
        matches!(
            self,
            Op::Load { .. }
                | Op::Store { .. }
                | Op::FetchAdd { .. }
                | Op::Await { .. }
                | Op::AwaitEither { .. }
        )
    }
}

/// A named straight-line program plus its register-file size.
#[derive(Clone, Debug)]
pub struct Program {
    pub name: String,
    pub ops: Vec<Op>,
    pub regs: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_edges() {
        assert!(Ordering::Acquire.acquires());
        assert!(Ordering::AcqRel.acquires());
        assert!(!Ordering::Relaxed.acquires());
        assert!(!Ordering::Release.acquires());
        assert!(Ordering::Release.releases());
        assert!(Ordering::AcqRel.releases());
        assert!(!Ordering::Relaxed.releases());
        assert!(!Ordering::Acquire.releases());
    }

    #[test]
    fn expr_and_cond_eval() {
        let regs = [5u64, 7];
        assert_eq!(Expr::Const(3).eval(&regs), 3);
        assert_eq!(Expr::Reg(1).eval(&regs), 7);
        assert_eq!(Expr::RegPlus(0, 2).eval(&regs), 7);
        assert!(Cond::RegGeConst(0, 5).eval(&regs));
        assert!(!Cond::RegGeConst(0, 6).eval(&regs));
        assert!(Cond::RegGeReg(1, 0).eval(&regs));
        assert!(!Cond::RegGeReg(0, 1).eval(&regs));
        assert!(Pred::GtReg(0).eval(6, &regs));
        assert!(!Pred::GtReg(0).eval(5, &regs));
        assert!(Pred::GeConst(2).eval(2, &regs));
        assert!(Pred::NeConst(0).eval(1, &regs));
    }
}
