//! Exhaustive DFS over scheduling-point interleavings.
//!
//! The explorer branches over which runnable thread executes its next
//! synchronization operation; everything between synchronization
//! operations runs eagerly inside the transition (a DPOR-lite reduction —
//! data accesses never commute with the race verdict, so only the order
//! of synchronization operations needs exploring). States clone at branch
//! points, so the search needs no replay machinery and depth is bounded
//! by the schedule length.
//!
//! Soundness note (why SC exploration proves anything about a weak
//! memory model): the checker enumerates every sequentially consistent
//! interleaving and flags any pair of cell accesses unordered by
//! happens-before. If no interleaving has such a pair, the program is
//! data-race-free, and by the DRF-SC theorem its executions under the
//! C++/Rust memory model coincide with the sequentially consistent ones
//! explored here. A reported race, conversely, is undefined behaviour
//! outright. Values carried by the atomics themselves are explored
//! through every interleaving of the (per-variable totally ordered)
//! atomic operations, which is how lost-signal deadlocks surface.

use crate::state::{Model, ModelState, TraceEntry, Violation};

/// Exploration caps: a backstop against accidental state-space blowups,
/// not a tuning knob (the shipped models are far below them).
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Maximum number of complete executions.
    pub max_executions: u64,
    /// Maximum scheduling-point transitions along one execution.
    pub max_depth: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_executions: 20_000_000,
            max_depth: 10_000,
        }
    }
}

/// Aggregate statistics of a completed exhaustive exploration.
#[derive(Clone, Copy, Debug, Default)]
pub struct Outcome {
    /// Complete executions explored (every one terminated cleanly).
    pub executions: u64,
    /// Total scheduling-point transitions executed.
    pub transitions: u64,
    /// Longest schedule seen.
    pub max_depth: usize,
}

/// A rejected model: the violation plus the exact schedule reaching it.
#[derive(Clone, Debug)]
pub struct Counterexample {
    pub violation: Violation,
    pub schedule: Vec<TraceEntry>,
}

impl Counterexample {
    /// Human-readable rendering: the violation, then the schedule that
    /// produced it, one scheduling decision per line.
    pub fn render(&self, model: &Model) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "VIOLATION in model `{}`: {}\n",
            model.name,
            model.render_violation(&self.violation)
        ));
        out.push_str("schedule (thread: operation):\n");
        for (i, e) in self.schedule.iter().enumerate() {
            out.push_str(&format!(
                "  {i:3}. {:<10} {}\n",
                model.thread_name(e.thread),
                e.desc
            ));
        }
        out
    }
}

/// Errors from [`explore`]: either a genuine counterexample or a blown
/// exploration cap.
#[derive(Debug)]
pub enum ExploreError {
    /// The model has a violating schedule.
    Violation(Box<Counterexample>),
    /// The state space exceeded [`Limits`] — the model must shrink.
    LimitExceeded { executions: u64 },
}

impl ExploreError {
    /// Renders against the model's names.
    pub fn render(&self, model: &Model) -> String {
        match self {
            ExploreError::Violation(cx) => cx.render(model),
            ExploreError::LimitExceeded { executions } => format!(
                "exploration limit exceeded after {executions} executions \
                 in model `{}` — shrink the model parameters",
                model.name
            ),
        }
    }
}

/// Exhaustively explores every interleaving of `model`. Returns the
/// outcome when every schedule terminates with all threads finished and
/// no violation; returns the first counterexample otherwise.
pub fn explore(model: &Model, limits: Limits) -> Result<Outcome, ExploreError> {
    let mut outcome = Outcome::default();
    let init = match ModelState::new(model) {
        Ok(st) => st,
        Err(violation) => {
            return Err(ExploreError::Violation(Box::new(Counterexample {
                violation,
                schedule: Vec::new(),
            })))
        }
    };
    dfs(model, init, limits, &mut outcome)?;
    Ok(outcome)
}

fn dfs(
    model: &Model,
    state: ModelState,
    limits: Limits,
    outcome: &mut Outcome,
) -> Result<(), ExploreError> {
    if state.all_finished() {
        outcome.executions += 1;
        outcome.max_depth = outcome.max_depth.max(state.trace.len());
        if outcome.executions > limits.max_executions {
            return Err(ExploreError::LimitExceeded {
                executions: outcome.executions,
            });
        }
        return Ok(());
    }
    let runnable = state.runnable_threads(model);
    if runnable.is_empty() {
        let violation = Violation::Deadlock {
            blocked: state.unfinished(),
        };
        return Err(ExploreError::Violation(Box::new(Counterexample {
            violation,
            schedule: state.trace,
        })));
    }
    if state.trace.len() >= limits.max_depth {
        return Err(ExploreError::LimitExceeded {
            executions: outcome.executions,
        });
    }
    // With a single runnable thread there is no scheduling choice: step in
    // place without cloning.
    if runnable.len() == 1 {
        let mut next = state;
        step(model, &mut next, runnable[0], outcome)?;
        return dfs(model, next, limits, outcome);
    }
    for t in runnable {
        let mut next = state.clone();
        step(model, &mut next, t, outcome)?;
        dfs(model, next, limits, outcome)?;
    }
    Ok(())
}

fn step(
    model: &Model,
    state: &mut ModelState,
    t: usize,
    outcome: &mut Outcome,
) -> Result<(), ExploreError> {
    outcome.transitions += 1;
    if let Err(violation) = state.transition(model, t) {
        return Err(ExploreError::Violation(Box::new(Counterexample {
            violation,
            schedule: state.trace.clone(),
        })));
    }
    Ok(())
}
