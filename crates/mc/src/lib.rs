#![forbid(unsafe_code)]
//! `noc-mc` — an exhaustive interleaving model checker for the parallel
//! engine's hand-rolled synchronization protocol.
//!
//! The only `unsafe` in the workspace is `Network::run_parallel` in
//! `noc-sim`: a persistent worker pool stepping disjoint `UnsafeCell`
//! router shards under an epoch/done/stop protocol whose correctness
//! rests on Acquire/Release edges. This crate machine-checks that
//! argument at the memory-model level:
//!
//! * a small virtual-thread DSL ([`program`]) with modeled atomics
//!   (Acquire/Release/Relaxed via vector clocks, [`clock`]) and tracked
//!   `UnsafeCell` accesses;
//! * a DFS scheduler ([`explore`]) that enumerates every interleaving of
//!   synchronization operations (data accesses run eagerly in between —
//!   the race verdict depends only on happens-before, so only sync-op
//!   order needs branching) and prints the exact schedule that reaches
//!   any violation;
//! * the `run_par` protocol encoded faithfully ([`protocol`]), plus a
//!   catalogue of weakened mutants (`Release`→`Relaxed` at each site,
//!   done-reset reordering, overlapping shards) that the checker must
//!   reject — proof that a pass means something.
//!
//! Like the in-repo `rand`/`proptest`/`criterion` shims, this crate is
//! vendored and dependency-free. Run it via `noc mc` or the tests in
//! `tests/protocol.rs`.
//!
//! ```
//! use noc_mc::{explore, Limits, RunParModel};
//! let model = RunParModel::faithful(2, 2, 1).build();
//! let outcome = explore(&model, Limits::default()).ok();
//! assert!(outcome.is_some_and(|o| o.executions > 0));
//! ```

pub mod clock;
pub mod explore;
pub mod program;
pub mod protocol;
pub mod state;

pub use clock::VectorClock;
pub use explore::{explore, Counterexample, ExploreError, Limits, Outcome};
pub use program::{AccessKind, Cond, Expr, Op, Ordering, Pred, Program};
pub use protocol::{shard_range, ProtocolOrderings, RunParModel, PHASES, SPIN_LIMIT};
pub use state::{Model, ModelState, TraceEntry, Violation};

#[cfg(test)]
mod tests {
    use super::*;
    use std::rc::Rc;

    /// Two threads writing one cell with no synchronization: the most
    /// basic race the detector must see.
    #[test]
    fn unsynchronized_writers_race() {
        let writer = |name: &str| {
            Rc::new(Program {
                name: name.to_string(),
                ops: vec![
                    // A sync op first so both threads reach the cell
                    // access via a scheduling point.
                    Op::Load {
                        var: 0,
                        ord: Ordering::Relaxed,
                        reg: 0,
                    },
                    Op::Cell {
                        cell: Expr::Const(0),
                        kind: AccessKind::Write,
                    },
                ],
                regs: 1,
            })
        };
        let model = Model {
            name: "race-smoke".into(),
            atomic_names: vec!["flag".into()],
            atomic_init: vec![0],
            cell_names: vec!["cell".into()],
            programs: vec![writer("a"), writer("b")],
        };
        let err = explore(&model, Limits::default()).err();
        match err {
            Some(ExploreError::Violation(cx)) => {
                assert!(matches!(cx.violation, Violation::DataRace { .. }));
                let rendered = cx.render(&model);
                assert!(rendered.contains("data race"), "{rendered}");
                assert!(rendered.contains("schedule"), "{rendered}");
            }
            other => panic!("expected a data race, got {other:?}"),
        }
    }

    /// Release/Acquire handoff orders the cell accesses: no race.
    #[test]
    fn release_acquire_handoff_is_clean() {
        let producer = Rc::new(Program {
            name: "producer".into(),
            ops: vec![
                Op::Cell {
                    cell: Expr::Const(0),
                    kind: AccessKind::Write,
                },
                Op::Store {
                    var: 0,
                    ord: Ordering::Release,
                    value: Expr::Const(1),
                },
            ],
            regs: 1,
        });
        let consumer = Rc::new(Program {
            name: "consumer".into(),
            ops: vec![
                Op::Await {
                    var: 0,
                    ord: Ordering::Acquire,
                    pred: Pred::GeConst(1),
                    reg: 0,
                },
                Op::Cell {
                    cell: Expr::Const(0),
                    kind: AccessKind::Write,
                },
            ],
            regs: 1,
        });
        let model = Model {
            name: "handoff".into(),
            atomic_names: vec!["flag".into()],
            atomic_init: vec![0],
            cell_names: vec!["cell".into()],
            programs: vec![producer, consumer],
        };
        let outcome = match explore(&model, Limits::default()) {
            Ok(o) => o,
            Err(e) => panic!("{}", e.render(&model)),
        };
        assert!(outcome.executions >= 1);
    }

    /// The same handoff with a relaxed publish: racy.
    #[test]
    fn relaxed_publish_races() {
        let producer = Rc::new(Program {
            name: "producer".into(),
            ops: vec![
                Op::Cell {
                    cell: Expr::Const(0),
                    kind: AccessKind::Write,
                },
                Op::Store {
                    var: 0,
                    ord: Ordering::Relaxed,
                    value: Expr::Const(1),
                },
            ],
            regs: 1,
        });
        let consumer = Rc::new(Program {
            name: "consumer".into(),
            ops: vec![
                Op::Await {
                    var: 0,
                    ord: Ordering::Acquire,
                    pred: Pred::GeConst(1),
                    reg: 0,
                },
                Op::Cell {
                    cell: Expr::Const(0),
                    kind: AccessKind::Read,
                },
            ],
            regs: 1,
        });
        let model = Model {
            name: "relaxed-publish".into(),
            atomic_names: vec!["flag".into()],
            atomic_init: vec![0],
            cell_names: vec!["cell".into()],
            programs: vec![producer, consumer],
        };
        assert!(matches!(
            explore(&model, Limits::default()),
            Err(ExploreError::Violation(_))
        ));
    }

    /// A thread awaiting a flag nobody sets: deadlock, with the blocked
    /// thread named.
    #[test]
    fn lost_signal_is_a_deadlock() {
        let waiter = Rc::new(Program {
            name: "waiter".into(),
            ops: vec![Op::Await {
                var: 0,
                ord: Ordering::Acquire,
                pred: Pred::GeConst(1),
                reg: 0,
            }],
            regs: 1,
        });
        let model = Model {
            name: "lost-signal".into(),
            atomic_names: vec!["flag".into()],
            atomic_init: vec![0],
            cell_names: vec![],
            programs: vec![waiter],
        };
        match explore(&model, Limits::default()) {
            Err(ExploreError::Violation(cx)) => {
                assert!(matches!(cx.violation, Violation::Deadlock { .. }));
                assert!(cx.render(&model).contains("waiter"));
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }
}
