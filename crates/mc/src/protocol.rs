//! The `run_par` epoch/done/stop protocol as a checkable model, plus the
//! deliberately weakened mutants that prove the checker has teeth.
//!
//! The real code (`noc-sim`, `Network::run_parallel`) shards router and
//! output-buffer state into `UnsafeCell`s and coordinates one main thread
//! with N workers per cycle:
//!
//! 1. main: deliver/inject — writes every router shard
//! 2. main: `done.store(0, Relaxed)`
//! 3. main: `epoch.fetch_add(1, Release)` — publishes the cycle
//! 4. worker k: spin until `epoch > seen` (`Acquire`) or `stop`
//!    (`Acquire`), then write router+output shards `[lo, hi)`
//! 5. worker k: `done.fetch_add(1, Release)`
//! 6. main: spin until `done >= threads` (`Acquire`)
//! 7. main: commit — writes every output shard; finish — reads every
//!    router shard
//! 8. after the last cycle, main: `stop.store(true, Release)`
//!
//! The model encodes exactly this with one virtual thread per real
//! thread, one tracked cell per `UnsafeCell` shard, and the identical
//! atomic orderings. Spin loops become blocking awaits (failed spin reads
//! have no side effects, and dropping their acquire edges only removes
//! happens-before — it can hide no race). The checker then proves, over
//! every interleaving: no two shard accesses race (mutual exclusion of
//! every cell access window) and every schedule terminates.
//!
//! Constants deliberately mirror `noc_sim::network::par_protocol`; the
//! drift test in `crates/sim/tests/protocol_drift.rs` fails if either
//! side changes alone.

use crate::program::{AccessKind, Cond, Expr, Op, Ordering, Pred, Program};
use crate::state::Model;
use std::rc::Rc;

/// Mirror of the real engine's spin threshold (`par_protocol::SPIN_LIMIT`
/// in `noc-sim`): iterations of `spin_loop` before yielding the
/// timeslice. The model abstracts spinning into blocking awaits, so the
/// value does not change the explored state space — it exists so the
/// drift test can pin the real constant to the audited protocol.
pub const SPIN_LIMIT: u32 = 64;

/// The protocol's phase order, shared verbatim with
/// `par_protocol::PHASES` in `noc-sim`. Reordering either side without
/// the other fails the drift test.
pub const PHASES: [&str; 7] = [
    "deliver_inject",
    "reset_done",
    "publish_epoch",
    "worker_step",
    "signal_done",
    "commit",
    "finish",
];

/// The atomic orderings at every synchronization site of the protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProtocolOrderings {
    /// `epoch.fetch_add(1, _)` on the main thread.
    pub epoch_publish: Ordering,
    /// `done.store(0, _)` on the main thread (ordered by the subsequent
    /// release publication, hence relaxed).
    pub done_reset: Ordering,
    /// `done.fetch_add(1, _)` on each worker.
    pub done_signal: Ordering,
    /// Main's `done.load(_)` spin.
    pub done_wait: Ordering,
    /// Worker's `epoch.load(_)` spin.
    pub epoch_wait: Ordering,
    /// `stop.store(true, _)` after the last cycle.
    pub stop_publish: Ordering,
    /// Worker's `stop.load(_)` check.
    pub stop_wait: Ordering,
}

impl Default for ProtocolOrderings {
    /// The orderings the real engine uses.
    fn default() -> Self {
        ProtocolOrderings {
            epoch_publish: Ordering::Release,
            done_reset: Ordering::Relaxed,
            done_signal: Ordering::Release,
            done_wait: Ordering::Acquire,
            epoch_wait: Ordering::Acquire,
            stop_publish: Ordering::Release,
            stop_wait: Ordering::Acquire,
        }
    }
}

/// Worker `k`'s shard `[lo, hi)` of `n` routers across `threads` workers
/// — the same split expression `run_parallel` uses.
pub fn shard_range(k: usize, n: usize, threads: usize) -> (usize, usize) {
    (k * n / threads, (k + 1) * n / threads)
}

/// A parameterized instance of the `run_par` protocol model.
#[derive(Clone, Debug)]
pub struct RunParModel {
    /// Model name (shows up in reports and counterexamples).
    pub name: String,
    /// Worker thread count (the main thread is additional).
    pub workers: usize,
    /// Router shard count.
    pub routers: usize,
    /// Simulated cycles (epochs).
    pub cycles: u64,
    /// Atomic orderings at each site.
    pub ord: ProtocolOrderings,
    /// Mutant: move `done.store(0)` *after* the epoch publication,
    /// losing worker signals that land in between (deadlock).
    pub reset_after_publish: bool,
    /// Mutant: grow every worker's shard by one router, breaking the
    /// disjointness that mutual exclusion rests on (data race).
    pub overlap_shards: bool,
}

impl RunParModel {
    /// The faithful model at the given size.
    pub fn faithful(workers: usize, routers: usize, cycles: u64) -> Self {
        RunParModel {
            name: format!("run_par {workers}w x {routers}r x {cycles}c"),
            workers,
            routers,
            cycles,
            ord: ProtocolOrderings::default(),
            reset_after_publish: false,
            overlap_shards: false,
        }
    }

    /// The deliberately weakened mutant catalogue at the given size.
    /// Every one must be rejected by the checker; a mutant that passes
    /// means the checker lost its teeth.
    pub fn mutants(workers: usize, routers: usize, cycles: u64) -> Vec<RunParModel> {
        let base = |name: &str| RunParModel {
            name: format!("mutant {name} ({workers}w x {routers}r x {cycles}c)"),
            ..RunParModel::faithful(workers, routers, cycles)
        };
        let mut out = Vec::new();
        let mut m = base("epoch-publish-relaxed");
        m.ord.epoch_publish = Ordering::Relaxed;
        out.push(m);
        let mut m = base("epoch-wait-relaxed");
        m.ord.epoch_wait = Ordering::Relaxed;
        out.push(m);
        let mut m = base("done-signal-relaxed");
        m.ord.done_signal = Ordering::Relaxed;
        out.push(m);
        let mut m = base("done-wait-relaxed");
        m.ord.done_wait = Ordering::Relaxed;
        out.push(m);
        let mut m = base("done-reset-after-publish");
        m.reset_after_publish = true;
        out.push(m);
        let mut m = base("overlapping-shards");
        m.overlap_shards = true;
        out.push(m);
        out
    }

    /// Lowers the protocol instance into an explorable [`Model`].
    ///
    /// Atomics: `epoch`, `done`, `stop`. Cells: one per router shard
    /// (`router[i]`), one per output buffer (`out[i]`, index `routers +
    /// i`). Thread 0 is the main thread, threads `1..=workers` the
    /// workers.
    pub fn build(&self) -> Model {
        const EPOCH: usize = 0;
        const DONE: usize = 1;
        const STOP: usize = 2;
        let r = self.routers as u64;
        let w = self.workers as u64;

        // --- main thread ------------------------------------------------
        // r0 = cycle, r1 = loop index, r2 = scratch (await/fetch results)
        let mut ops: Vec<Op> = Vec::new();
        ops.push(Op::Set {
            reg: 0,
            value: Expr::Const(0),
        });
        let l_cycle = ops.len();
        let b_exit = ops.len();
        ops.push(Op::Branch {
            cond: Cond::RegGeConst(0, self.cycles),
            target: usize::MAX, // patched to L_STOP
        });
        // deliver/inject: write every router cell.
        push_cell_loop(&mut ops, 1, 0, r, 0, AccessKind::Write);
        // reset + publish (mutant may swap the order).
        let reset = Op::Store {
            var: DONE,
            ord: self.ord.done_reset,
            value: Expr::Const(0),
        };
        let publish = Op::FetchAdd {
            var: EPOCH,
            ord: self.ord.epoch_publish,
            operand: Expr::Const(1),
            reg: 2,
        };
        if self.reset_after_publish {
            ops.push(publish);
            ops.push(reset);
        } else {
            ops.push(reset);
            ops.push(publish);
        }
        // wait for every worker's signal.
        ops.push(Op::Await {
            var: DONE,
            ord: self.ord.done_wait,
            pred: Pred::GeConst(w),
            reg: 2,
        });
        // commit: write every out cell.
        push_cell_loop(&mut ops, 1, 0, r, r, AccessKind::Write);
        // finish: read every router cell.
        push_cell_loop(&mut ops, 1, 0, r, 0, AccessKind::Read);
        ops.push(Op::Set {
            reg: 0,
            value: Expr::RegPlus(0, 1),
        });
        ops.push(Op::Jump { target: l_cycle });
        let l_stop = ops.len();
        ops.push(Op::Store {
            var: STOP,
            ord: self.ord.stop_publish,
            value: Expr::Const(1),
        });
        if let Op::Branch { target, .. } = &mut ops[b_exit] {
            *target = l_stop;
        }
        let main = Program {
            name: "main".to_string(),
            ops,
            regs: 3,
        };

        // --- workers ----------------------------------------------------
        let mut programs = vec![Rc::new(main)];
        for k in 0..self.workers {
            let (lo, mut hi) = shard_range(k, self.routers, self.workers);
            if self.overlap_shards {
                hi = (hi + 1).min(self.routers);
            }
            // r0 = seen, r1 = loop index, r2 = loaded epoch, r3 = scratch
            let mut ops: Vec<Op> = Vec::new();
            ops.push(Op::Set {
                reg: 0,
                value: Expr::Const(0),
            });
            let l_wait = ops.len();
            let await_idx = ops.len();
            ops.push(Op::AwaitEither {
                var: EPOCH,
                ord: self.ord.epoch_wait,
                pred: Pred::GtReg(0),
                reg: 2,
                alt_var: STOP,
                alt_ord: self.ord.stop_wait,
                alt_pred: Pred::NeConst(0),
                alt_target: usize::MAX, // patched to program end
            });
            ops.push(Op::Set {
                reg: 0,
                value: Expr::Reg(2),
            });
            // step each owned router: exclusive access to router + out.
            ops.push(Op::Set {
                reg: 1,
                value: Expr::Const(lo as u64),
            });
            let l_work = ops.len();
            let b_done = ops.len();
            ops.push(Op::Branch {
                cond: Cond::RegGeConst(1, hi as u64),
                target: usize::MAX, // patched to L_SIG
            });
            ops.push(Op::Cell {
                cell: Expr::Reg(1),
                kind: AccessKind::Write,
            });
            ops.push(Op::Cell {
                cell: Expr::RegPlus(1, r),
                kind: AccessKind::Write,
            });
            ops.push(Op::Set {
                reg: 1,
                value: Expr::RegPlus(1, 1),
            });
            ops.push(Op::Jump { target: l_work });
            let l_sig = ops.len();
            ops.push(Op::FetchAdd {
                var: DONE,
                ord: self.ord.done_signal,
                operand: Expr::Const(1),
                reg: 3,
            });
            ops.push(Op::Jump { target: l_wait });
            let end = ops.len();
            if let Op::Branch { target, .. } = &mut ops[b_done] {
                *target = l_sig;
            }
            if let Op::AwaitEither { alt_target, .. } = &mut ops[await_idx] {
                *alt_target = end;
            }
            programs.push(Rc::new(Program {
                name: format!("worker{k}"),
                ops,
                regs: 4,
            }));
        }

        Model {
            name: self.name.clone(),
            atomic_names: vec!["epoch".into(), "done".into(), "stop".into()],
            atomic_init: vec![0, 0, 0],
            cell_names: (0..self.routers)
                .map(|i| format!("router[{i}]"))
                .chain((0..self.routers).map(|i| format!("out[{i}]")))
                .collect(),
            programs,
        }
    }
}

/// Emits `for reg in 0..count { cell[base + reg] access }` into `ops`.
fn push_cell_loop(
    ops: &mut Vec<Op>,
    reg: usize,
    start: u64,
    count: u64,
    base: u64,
    kind: AccessKind,
) {
    ops.push(Op::Set {
        reg,
        value: Expr::Const(start),
    });
    let l_top = ops.len();
    let b_exit = ops.len();
    ops.push(Op::Branch {
        cond: Cond::RegGeConst(reg, count),
        target: usize::MAX,
    });
    ops.push(Op::Cell {
        cell: Expr::RegPlus(reg, base),
        kind,
    });
    ops.push(Op::Set {
        reg,
        value: Expr::RegPlus(reg, 1),
    });
    ops.push(Op::Jump { target: l_top });
    let after = ops.len();
    if let Op::Branch { target, .. } = &mut ops[b_exit] {
        *target = after;
    }
}
