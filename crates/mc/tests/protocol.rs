//! The tentpole proof: the faithful `run_par` protocol model passes
//! exhaustive exploration at and beyond the acceptance size (3 workers ×
//! 4 routers × 2 epochs), and every shipped weakened mutant is rejected
//! with a concrete counterexample schedule.

use noc_mc::{explore, ExploreError, Limits, RunParModel, Violation};

/// Sizes the faithful model must survive, acceptance size last.
const FAITHFUL_SIZES: &[(usize, usize, u64)] = &[
    (1, 1, 1),
    (1, 4, 2),
    (2, 2, 2),
    (2, 4, 3),
    (3, 3, 2),
    (3, 4, 2),
];

#[test]
fn faithful_model_is_race_free_and_terminates() {
    for &(w, r, c) in FAITHFUL_SIZES {
        let spec = RunParModel::faithful(w, r, c);
        let model = spec.build();
        match explore(&model, Limits::default()) {
            Ok(outcome) => {
                assert!(
                    outcome.executions >= 1,
                    "{}: no execution explored",
                    model.name
                );
                // The acceptance-floor instance must genuinely exercise
                // concurrency: many distinct interleavings, not a
                // degenerate single schedule.
                if (w, r, c) == (3, 4, 2) {
                    assert!(
                        outcome.executions > 1_000,
                        "{}: only {} interleavings explored — model lost \
                         its concurrency",
                        model.name,
                        outcome.executions
                    );
                }
            }
            Err(e) => panic!("{}", e.render(&model)),
        }
    }
}

#[test]
fn every_mutant_is_rejected_with_a_counterexample() {
    let mutants = RunParModel::mutants(3, 4, 2);
    assert!(mutants.len() >= 5, "mutant catalogue shrank");
    for spec in mutants {
        let model = spec.build();
        match explore(&model, Limits::default()) {
            Ok(outcome) => panic!(
                "mutant `{}` PASSED exploration ({} executions) — the \
                 checker has lost its teeth",
                model.name, outcome.executions
            ),
            Err(ExploreError::Violation(cx)) => {
                let rendered = cx.render(&model);
                assert!(
                    rendered.contains("schedule"),
                    "counterexample lacks a schedule: {rendered}"
                );
            }
            Err(e @ ExploreError::LimitExceeded { .. }) => {
                panic!("mutant `{}`: {}", model.name, e.render(&model))
            }
        }
    }
}

#[test]
fn relaxed_orderings_race_and_reordered_reset_deadlocks() {
    // The mutant catalogue's failure *modes* are part of the contract:
    // weakening a publication ordering must surface as a data race on a
    // shard, while reordering the done reset must surface as a lost
    // signal (deadlock).
    for spec in RunParModel::mutants(2, 2, 2) {
        let model = spec.build();
        let Err(ExploreError::Violation(cx)) = explore(&model, Limits::default()) else {
            panic!("mutant `{}` not rejected", model.name);
        };
        if model.name.contains("done-reset-after-publish") {
            assert!(
                matches!(cx.violation, Violation::Deadlock { .. }),
                "`{}`: expected deadlock, got {}",
                model.name,
                cx.violation
            );
        } else {
            assert!(
                matches!(cx.violation, Violation::DataRace { .. }),
                "`{}`: expected data race, got {}",
                model.name,
                cx.violation
            );
        }
    }
}

#[test]
fn shard_split_matches_the_engine_formula() {
    // Shards must partition 0..n exactly — the disjointness the mutual-
    // exclusion proof quantifies over.
    for threads in 1..=4 {
        for n in [1usize, 2, 3, 4, 7, 64] {
            let mut covered = 0;
            for k in 0..threads {
                let (lo, hi) = noc_mc::shard_range(k, n, threads);
                assert!(lo <= hi && hi <= n);
                if k > 0 {
                    let (_, prev_hi) = noc_mc::shard_range(k - 1, n, threads);
                    assert_eq!(prev_hi, lo, "gap or overlap at shard {k}");
                }
                covered += hi - lo;
            }
            assert_eq!(covered, n, "shards do not cover 0..{n}");
        }
    }
}
